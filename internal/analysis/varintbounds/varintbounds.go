// Package varintbounds guards decoding of the (Δitem, Δpos, count)
// varint triples (paper §3.4–3.5). encoding.Uvarint signals a
// truncated buffer only through its length result (n == 0, or n < 0
// for overflow) — the value result is then meaningless, and advancing
// a cursor by a non-positive n turns a scan loop into an infinite
// loop. The CFP-array is an on-disk format the process did not
// produce, so everything a varint read returns is untrusted until a
// comparison has vouched for it.
//
// The analyzer has two layers:
//
//   - A lexical layer (the PR 2 rule, kept): every varint length
//     result must appear in some comparison in the same function, and
//     may never be discarded with _.
//
//   - A taint layer (path-sensitive): both results of encoding.Uvarint
//     and the result of encoding.SkipUvarint are taint sources — the
//     source facts are exported by the companion Sources analyzer, so
//     the knowledge "Uvarint's results are untrusted" lives on the
//     encoding package's objects rather than being re-derived by every
//     consumer. Taint propagates through assignments, arithmetic, and
//     conversions; a sink is a slice/array/string index, a slice
//     bound, or a make length/capacity. At each sink the tainted value
//     must be sanitized on every path:
//
//     – comparing the value against a constant (the n <= 0 truncation
//     check) sanitizes it on both branch edges;
//     – comparing it against a non-constant bound (v < len(b))
//     sanitizes only the edge on which the comparison constrains it —
//     the true edge for v < e / v <= e / v == e, the false edge for
//     v > e / v >= e / v != e (mirrored when the value is on the
//     right);
//     – an assert call (any function whose name starts with "assert",
//     e.g. the debugchecks layer's assertf) whose arguments compare
//     the value audits it from that point on, branch-insensitively:
//     the assert block may be compiled out in default builds
//     (`if debugChecks { assertf(n1 > 0, ...) }`), but it is an
//     executable, CI-verified annotation of the trust boundary, so it
//     is accepted in place of a live check.
//
// The taint layer is what catches the branch-local bug the lexical
// rule provably cannot: a bounds check on the if arm with the use on
// the else arm contains a comparison of the value, so the lexical rule
// is satisfied, yet the unchecked path flows straight to the sink.
package varintbounds

import (
	"go/ast"
	"go/token"
	"go/types"

	"cfpgrowth/internal/analysis"
	"cfpgrowth/internal/analysis/boundscertain"
	"cfpgrowth/internal/analysis/cfg"
	"cfpgrowth/internal/analysis/dataflow"
	"cfpgrowth/internal/analysis/summary"
)

// Untrusted is the fact exported for functions whose results carry
// untrusted input-derived values; Results lists the tainted result
// indices.
type Untrusted struct {
	Results []int
}

// AFact marks Untrusted as a fact type.
func (*Untrusted) AFact() {}

const encodingPath = "cfpgrowth/internal/encoding"

// Sources exports Untrusted facts for the varint readers of
// internal/encoding. It annotates the encoding package's objects from
// whichever package is being analyzed (the fact is a deterministic
// property of the API), so subset runs that never analyze
// internal/encoding itself still see the sources.
var Sources = &analysis.Analyzer{
	Name: "varintsources",
	Doc: `exports Untrusted facts marking the results of
encoding.Uvarint (value and length) and encoding.SkipUvarint (length)
as tainted by undecoded input; consumed by varintbounds`,
	FactTypes: []analysis.Fact{new(Untrusted)},
	Run:       runSources,
}

// sourceResults lists the tainted result indices per encoding
// function.
var sourceResults = map[string][]int{
	"Uvarint":     {0, 1},
	"SkipUvarint": {0},
}

func runSources(pass *analysis.Pass) error {
	mark := func(pkg *types.Package) {
		for name, idxs := range sourceResults {
			if fn, ok := pkg.Scope().Lookup(name).(*types.Func); ok {
				pass.ExportObjectFact(fn, &Untrusted{Results: idxs})
			}
		}
	}
	if pass.Pkg.Path() == encodingPath {
		mark(pass.Pkg)
	}
	for _, imp := range pass.Pkg.Imports() {
		if imp.Path() == encodingPath {
			mark(imp)
		}
	}
	return nil
}

// Analyzer is the varintbounds rule.
var Analyzer = &analysis.Analyzer{
	Name: "varintbounds",
	Doc: `requires the length result of encoding.Uvarint /
encoding.SkipUvarint to be compared within the same function, and —
path-sensitively — requires every varint-derived value reaching a
slice index, slice bound, or make size to be dominated by a sanitizing
comparison (constant truncation check, directional bound check, or an
assert audit) on every path; passing a tainted value to a callee whose
summary says it indexes that parameter unchecked (UnboundedIndex) is
the same sink one call further away; sinks whose bounds the interval
engine has already certified (the boundscertain fact) are proven safe
and skipped, so a numeric proof discharges the taint finding without
an ignore directive`,
	Requires:  []*analysis.Analyzer{Sources, summary.Analyzer, boundscertain.Analyzer},
	FactTypes: []analysis.Fact{new(Untrusted), new(summary.Effects), new(boundscertain.Certified)},
	Run:       run,
}

func run(pass *analysis.Pass) error {
	lookup := summary.Lookuper(pass)
	for _, fd := range pass.FuncDecls() {
		lexicalCheck(pass, fd)
		fn, _ := pass.TypesInfo.Defs[fd.Name].(*types.Func)
		certified := boundscertain.Sites(pass, fn)
		taintCheck(pass, fd.Body, lookup, certified)
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			if lit, ok := n.(*ast.FuncLit); ok && lit.Body != nil {
				// Certified sites never sit inside function literals
				// (the SSA form treats them as opaque), so the set
				// cannot mask anything here.
				taintCheck(pass, lit.Body, lookup, certified)
			}
			return true
		})
	}
	return nil
}

// ---------------------------------------------------------------------
// Lexical layer (unchanged from PR 2): every length result must be
// compared somewhere in the function; _-discard always fails.

// lengthResultIndex returns which assignment slot holds the length
// result of a varint-reading call, or -1 if call is not one.
func lengthResultIndex(pass *analysis.Pass, call *ast.CallExpr) int {
	fn := analysis.Callee(pass.TypesInfo, call)
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != encodingPath {
		return -1
	}
	switch fn.Name() {
	case "Uvarint":
		return 1
	case "SkipUvarint":
		return 0
	}
	return -1
}

func lexicalCheck(pass *analysis.Pass, fd *ast.FuncDecl) {
	// Pass 1: find every varint-read assignment and its length object.
	type read struct {
		call *ast.CallExpr
		obj  types.Object // nil when the length went to _
	}
	var reads []read
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Rhs) != 1 {
			return true
		}
		call, ok := ast.Unparen(as.Rhs[0]).(*ast.CallExpr)
		if !ok {
			return true
		}
		idx := lengthResultIndex(pass, call)
		if idx < 0 || idx >= len(as.Lhs) {
			return true
		}
		id, ok := as.Lhs[idx].(*ast.Ident)
		if !ok {
			return true
		}
		if id.Name == "_" {
			reads = append(reads, read{call: call})
			return true
		}
		obj := pass.TypesInfo.Defs[id]
		if obj == nil {
			obj = pass.TypesInfo.Uses[id]
		}
		reads = append(reads, read{call: call, obj: obj})
		return true
	})
	if len(reads) == 0 {
		return
	}
	// Pass 2: which length objects appear in a comparison?
	compared := make(map[types.Object]bool)
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		be, ok := n.(*ast.BinaryExpr)
		if !ok {
			return true
		}
		if !isRelational(be.Op) {
			return true
		}
		for _, side := range []ast.Expr{be.X, be.Y} {
			markIdents(pass, side, compared)
		}
		return true
	})
	for _, r := range reads {
		switch {
		case r.obj == nil:
			pass.Reportf(r.call.Pos(), "varint length result discarded with _: truncated input is indistinguishable from value 0")
		case !compared[r.obj]:
			pass.Reportf(r.call.Pos(), "varint length %s is never checked in this function: a truncated buffer yields length 0 and garbage data", r.obj.Name())
		}
	}
}

// markIdents records every object referenced by identifiers in e.
func markIdents(pass *analysis.Pass, e ast.Expr, set map[types.Object]bool) {
	ast.Inspect(e, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok {
			if obj := pass.TypesInfo.Uses[id]; obj != nil {
				set[obj] = true
			}
		}
		return true
	})
}

func isRelational(op token.Token) bool {
	switch op {
	case token.EQL, token.NEQ, token.LSS, token.LEQ, token.GTR, token.GEQ:
		return true
	}
	return false
}

// ---------------------------------------------------------------------
// Taint layer.

// tstate is the set of currently tainted objects on this path.
type tstate map[types.Object]bool

type taintProblem struct {
	pass *analysis.Pass
	// audited maps objects to the position of the first assert call
	// vouching for them; audits apply from that position on.
	audited map[types.Object]token.Pos
	// certified holds the Lbrack positions of index/slice expressions
	// the interval engine proved in range (the boundscertain fact):
	// a numeric proof makes the sink unreachable by a faulting value,
	// tainted or not.
	certified map[token.Pos]bool
}

func (p *taintProblem) Entry() tstate { return tstate{} }

func (p *taintProblem) Clone(s tstate) tstate {
	c := make(tstate, len(s))
	for k := range s {
		c[k] = true
	}
	return c
}

func (p *taintProblem) Join(a, b tstate) tstate {
	j := p.Clone(a)
	for k := range b {
		j[k] = true
	}
	return j
}

func (p *taintProblem) Equal(a, b tstate) bool {
	if len(a) != len(b) {
		return false
	}
	for k := range a {
		if !b[k] {
			return false
		}
	}
	return true
}

// Transfer mutates and returns s (the solver hands it a private copy).
func (p *taintProblem) Transfer(s tstate, n ast.Node) tstate {
	switch n := n.(type) {
	case *ast.AssignStmt:
		p.transferAssign(s, n)
	case *ast.DeclStmt:
		if gd, ok := n.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for i, name := range vs.Names {
					if i < len(vs.Values) && p.exprTainted(s, vs.Values[i]) {
						p.set(s, name, true)
					}
				}
			}
		}
	case *ast.IncDecStmt:
		// x++ keeps x's taint.
	}
	return s
}

func (p *taintProblem) transferAssign(s tstate, as *ast.AssignStmt) {
	// Tuple form: one call on the right. Taint the result slots the
	// callee's Untrusted fact names.
	if len(as.Rhs) == 1 && len(as.Lhs) > 1 {
		if call, ok := ast.Unparen(as.Rhs[0]).(*ast.CallExpr); ok {
			tainted := p.taintedResults(call)
			for i, lhs := range as.Lhs {
				p.set(s, lhs, i < len(tainted) && tainted[i])
			}
			return
		}
	}
	if as.Tok != token.ASSIGN && as.Tok != token.DEFINE {
		// Compound assignment (x += e): x stays/becomes tainted if
		// either side is.
		if len(as.Lhs) == 1 && len(as.Rhs) == 1 {
			if p.exprTainted(s, as.Rhs[0]) {
				p.set(s, as.Lhs[0], true)
			}
		}
		return
	}
	for i, lhs := range as.Lhs {
		if i >= len(as.Rhs) {
			break
		}
		rhs := as.Rhs[i]
		if call, ok := ast.Unparen(rhs).(*ast.CallExpr); ok {
			if tainted := p.taintedResults(call); len(tainted) > 0 {
				p.set(s, lhs, tainted[0])
				continue
			}
		}
		p.set(s, lhs, p.exprTainted(s, rhs))
	}
}

// taintedResults returns, per result slot of call, whether the
// callee's Untrusted fact marks it tainted; nil when the callee has no
// fact.
func (p *taintProblem) taintedResults(call *ast.CallExpr) []bool {
	fn := analysis.Callee(p.pass.TypesInfo, call)
	if fn == nil {
		return nil
	}
	var fact Untrusted
	if !p.pass.ImportObjectFact(fn, &fact) {
		return nil
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return nil
	}
	out := make([]bool, sig.Results().Len())
	for _, i := range fact.Results {
		if i >= 0 && i < len(out) {
			out[i] = true
		}
	}
	return out
}

// set records lhs as tainted or clean; non-identifier targets (fields,
// index expressions) are not tracked.
func (p *taintProblem) set(s tstate, lhs ast.Expr, tainted bool) {
	id, ok := ast.Unparen(lhs).(*ast.Ident)
	if !ok || id.Name == "_" {
		return
	}
	obj := p.pass.TypesInfo.Defs[id]
	if obj == nil {
		obj = p.pass.TypesInfo.Uses[id]
	}
	if obj == nil {
		return
	}
	if tainted {
		s[obj] = true
	} else {
		delete(s, obj)
	}
}

// exprTainted reports whether e references any tainted object (not
// descending into function literals; calls contribute only through
// their arguments — results of ordinary calls are clean).
func (p *taintProblem) exprTainted(s tstate, e ast.Expr) bool {
	tainted := false
	dataflow.Inspect(e, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok {
			if obj := p.pass.TypesInfo.Uses[id]; obj != nil && s[obj] {
				tainted = true
			}
		}
		return true
	})
	return tainted
}

// Refine applies a branch condition to the taint set.
func (p *taintProblem) Refine(s tstate, cond ast.Expr, taken bool) tstate {
	be, ok := ast.Unparen(cond).(*ast.BinaryExpr)
	if !ok || !isRelational(be.Op) {
		return s
	}
	info := p.pass.TypesInfo
	sanitize := func(side, other ast.Expr, sideIsLeft bool) {
		obj := rootObj(info, side)
		if obj == nil || !s[obj] {
			return
		}
		if tv, ok := info.Types[other]; ok && tv.Value != nil {
			// Constant comparison (n <= 0, n == 0): the truncation
			// case was considered; both edges are sanitized.
			delete(s, obj)
			return
		}
		op := be.Op
		if !sideIsLeft {
			switch op {
			case token.LSS:
				op = token.GTR
			case token.LEQ:
				op = token.GEQ
			case token.GTR:
				op = token.LSS
			case token.GEQ:
				op = token.LEQ
			}
		}
		var okEdge bool
		switch op {
		case token.LSS, token.LEQ, token.EQL:
			okEdge = true
		case token.GTR, token.GEQ, token.NEQ:
			okEdge = false
		}
		if taken == okEdge {
			delete(s, obj)
		}
	}
	sanitize(be.X, be.Y, true)
	sanitize(be.Y, be.X, false)
	return s
}

// rootObj resolves e — through parentheses and conversions — to the
// variable object it reads, or nil.
func rootObj(info *types.Info, e ast.Expr) types.Object {
	for {
		e = ast.Unparen(e)
		if call, ok := e.(*ast.CallExpr); ok && len(call.Args) == 1 {
			if tv, ok := info.Types[call.Fun]; ok && tv.IsType() {
				e = call.Args[0]
				continue
			}
		}
		break
	}
	if id, ok := e.(*ast.Ident); ok {
		return info.Uses[id]
	}
	return nil
}

// taintCheck solves the taint problem over one function scope and
// reports tainted values reaching sinks.
func taintCheck(pass *analysis.Pass, body *ast.BlockStmt, lookup summary.Lookup, certified map[token.Pos]bool) {
	prob := &taintProblem{pass: pass, audited: collectAudits(pass, body), certified: certified}
	g := cfg.New(body)
	res := dataflow.Forward[tstate](g, prob)
	res.Iterate(g, prob, func(n ast.Node, before tstate) {
		// Check sinks against the pre-node state; within one
		// statement, sinks in the RHS are evaluated before the
		// assignment re-taints or cleans the LHS.
		checkSinks(pass, prob, n, before, lookup)
	})
}

// collectAudits finds assert-style calls whose arguments compare an
// object: assertf(n1 > 0, ...) audits n1 from that position on.
func collectAudits(pass *analysis.Pass, body *ast.BlockStmt) map[types.Object]token.Pos {
	audited := make(map[types.Object]token.Pos)
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := analysis.Callee(pass.TypesInfo, call)
		if fn == nil || len(fn.Name()) < 6 || fn.Name()[:6] != "assert" {
			return true
		}
		for _, arg := range call.Args {
			ast.Inspect(arg, func(m ast.Node) bool {
				be, ok := m.(*ast.BinaryExpr)
				if !ok || !isRelational(be.Op) {
					return true
				}
				for _, side := range []ast.Expr{be.X, be.Y} {
					if obj := rootObj(pass.TypesInfo, side); obj != nil {
						if old, seen := audited[obj]; !seen || call.Pos() < old {
							audited[obj] = call.Pos()
						}
					}
				}
				return true
			})
		}
		return true
	})
	return audited
}

// checkSinks walks one CFG node reporting tainted values used as
// slice/array/string indices, slice bounds, or make sizes.
func checkSinks(pass *analysis.Pass, prob *taintProblem, n ast.Node, s tstate, lookup summary.Lookup) {
	info := pass.TypesInfo
	dataflow.Inspect(n, func(m ast.Node) bool {
		switch m := m.(type) {
		case *ast.IndexExpr:
			if indexableSink(info, m.X) && !prob.certified[m.Lbrack] {
				reportTaintedExpr(pass, prob, s, m.Index, "an index")
			}
		case *ast.SliceExpr:
			if prob.certified[m.Lbrack] {
				break
			}
			for _, bound := range []ast.Expr{m.Low, m.High, m.Max} {
				if bound != nil {
					reportTaintedExpr(pass, prob, s, bound, "a slice bound")
				}
			}
		case *ast.CallExpr:
			if id, ok := ast.Unparen(m.Fun).(*ast.Ident); ok {
				if _, isBuiltin := info.Uses[id].(*types.Builtin); isBuiltin && id.Name == "make" {
					for _, arg := range m.Args[1:] {
						reportTaintedExpr(pass, prob, s, arg, "a make size")
					}
					return true
				}
			}
			// A callee whose summary says it indexes a parameter without
			// its own check (UnboundedIndex) is the same sink one call
			// further away: handing it a tainted value faults inside the
			// callee.
			fn := analysis.Callee(info, m)
			if fn == nil {
				return true
			}
			eff := lookup(fn)
			if eff == nil || eff.UnboundedIndex == 0 {
				return true
			}
			for i, arg := range summary.ArgExprs(m, fn) {
				if arg == nil || eff.UnboundedIndex&(1<<i) == 0 {
					continue
				}
				reportTaintedExpr(pass, prob, s, arg, "an unchecked index inside "+fn.Name())
			}
		}
		return true
	})
}

// indexableSink reports whether indexing x with an untrusted value can
// fault: slices, arrays, and strings (map lookups cannot).
func indexableSink(info *types.Info, x ast.Expr) bool {
	tv, ok := info.Types[x]
	if !ok || tv.Type == nil {
		return false
	}
	t := tv.Type.Underlying()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem().Underlying()
	}
	switch t := t.(type) {
	case *types.Slice, *types.Array:
		return true
	case *types.Basic:
		return t.Info()&types.IsString != 0
	}
	return false
}

// reportTaintedExpr reports the first tainted, un-audited object
// referenced by e (at most one report per sink expression).
func reportTaintedExpr(pass *analysis.Pass, prob *taintProblem, s tstate, e ast.Expr, what string) {
	done := false
	dataflow.Inspect(e, func(n ast.Node) bool {
		if done {
			return false
		}
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		obj := pass.TypesInfo.Uses[id]
		if obj == nil || !s[obj] {
			return true
		}
		if auditPos, ok := prob.audited[obj]; ok && auditPos < e.Pos() {
			return true
		}
		done = true
		pass.Reportf(e.Pos(), "varint-derived value %s is used as %s without a dominating bounds check on this path", obj.Name(), what)
		return false
	})
}
