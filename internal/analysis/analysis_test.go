package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
)

// toy flags every integer literal 42 — enough surface to exercise
// suppression, missing-reason, and staleness handling end to end.
var toy = &Analyzer{
	Name: "toy",
	Doc:  "flags the literal 42",
	Run: func(pass *Pass) error {
		for _, f := range pass.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				if lit, ok := n.(*ast.BasicLit); ok && lit.Kind == token.INT && lit.Value == "42" {
					pass.Reportf(lit.Pos(), "literal 42")
				}
				return true
			})
		}
		return nil
	},
}

func TestDirectives(t *testing.T) {
	pkg, err := LoadFixture("testdata")
	if err != nil {
		t.Fatal(err)
	}
	findings, err := Run(pkg, []*Analyzer{toy})
	if err != nil {
		t.Fatal(err)
	}

	src, err := os.ReadFile(filepath.Join("testdata", "directives.go"))
	if err != nil {
		t.Fatal(err)
	}
	var want []string
	for i, line := range strings.Split(string(src), "\n") {
		n := i + 1
		switch {
		case strings.Contains(line, "MARK:flagged"):
			want = append(want, fmt.Sprintf("toy:%d:literal 42", n))
		case strings.TrimSpace(line) == "//cfplint:ignore toy":
			want = append(want, fmt.Sprintf("cfplint:%d://cfplint:ignore directive without a reason", n))
		case strings.Contains(line, "MARK:stale"):
			want = append(want, fmt.Sprintf("cfplint:%d://cfplint:ignore directive suppresses nothing (stale?)", n))
		}
	}

	var got []string
	for _, f := range findings {
		got = append(got, f.Analyzer+":"+strconv.Itoa(f.Pos.Line)+":"+f.Message)
	}
	if len(got) != len(want) {
		t.Fatalf("got %d findings %v, want %d %v", len(got), got, len(want), want)
	}
	for _, w := range want {
		found := false
		for _, g := range got {
			if g == w {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("missing finding %q in %v", w, got)
		}
	}
}
