package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
)

// toy flags every integer literal 42 — enough surface to exercise
// suppression, missing-reason, and staleness handling end to end.
// toy43 is its sibling for the comma-separated directive form.
var toy = literalAnalyzer("toy", "42")
var toy43 = literalAnalyzer("toy43", "43")

func literalAnalyzer(name, value string) *Analyzer {
	return &Analyzer{
		Name: name,
		Doc:  "flags the literal " + value,
		Run: func(pass *Pass) error {
			for _, f := range pass.Files {
				ast.Inspect(f, func(n ast.Node) bool {
					if lit, ok := n.(*ast.BasicLit); ok && lit.Kind == token.INT && lit.Value == value {
						pass.Reportf(lit.Pos(), "literal "+value)
					}
					return true
				})
			}
			return nil
		},
	}
}

func TestDirectives(t *testing.T) {
	pkg, err := LoadFixture("testdata")
	if err != nil {
		t.Fatal(err)
	}
	findings, err := Run(pkg, []*Analyzer{toy, toy43})
	if err != nil {
		t.Fatal(err)
	}

	src, err := os.ReadFile(filepath.Join("testdata", "directives.go"))
	if err != nil {
		t.Fatal(err)
	}
	var want []string
	for i, line := range strings.Split(string(src), "\n") {
		n := i + 1
		if strings.Contains(line, "MARK:flagged") {
			want = append(want, fmt.Sprintf("toy:%d:literal 42", n))
		}
		if strings.Contains(line, "MARK:also43") {
			want = append(want, fmt.Sprintf("toy43:%d:literal 43", n))
		}
		switch strings.TrimSpace(line) {
		case "//cfplint:ignore toy", "//cfplint:ignore toy,toy43":
			want = append(want, fmt.Sprintf("cfplint:%d://cfplint:ignore directive without a reason", n))
		}
		if strings.Contains(line, "MARK:stale") {
			want = append(want, fmt.Sprintf("cfplint:%d://cfplint:ignore directive suppresses nothing (stale?)", n))
		}
	}

	var got []string
	for _, f := range findings {
		got = append(got, f.Analyzer+":"+strconv.Itoa(f.Pos.Line)+":"+f.Message)
	}
	if len(got) != len(want) {
		t.Fatalf("got %d findings %v, want %d %v", len(got), got, len(want), want)
	}
	for _, w := range want {
		found := false
		for _, g := range got {
			if g == w {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("missing finding %q in %v", w, got)
		}
	}
}
