// Package ssa constructs a pruned static single-assignment form over
// the per-function control-flow graphs of internal/analysis/cfg, the
// substrate of the numeric abstract-interpretation layer
// (internal/analysis/interval and the intwidth / boundscertain /
// loopprogress analyzers built on it).
//
// The form is deliberately lightweight: it versions *variables*, not
// expressions. Every definition of a tracked local variable — an
// assignment, an op-assignment, an increment, a range binding, an
// implicit zero initialization, or a parameter at entry — creates a
// Value; phi values merge versions at join blocks (placed at iterated
// dominance frontiers, pruned by liveness so a phi only exists where
// the variable is live); and Refine values version a variable through
// a conditional edge whose atomic condition mentions it, so a
// downstream consumer can narrow "i" to "i, given i < len(b) was
// taken". Renaming walks the dominator tree, so a refinement is in
// scope exactly where its branch outcome is guaranteed.
//
// Variables that escape scalar reasoning — address-taken locals,
// variables captured by function literals, package-level state, struct
// fields — are untracked: uses of them resolve to no Value, and
// consumers must treat them as unconstrained.
//
// # Constant edges and the debugchecks convention
//
// Conditional edges whose atomic condition is a compile-time boolean
// constant are pruned before dominance is computed: the dead arm never
// executes, so the live arm dominates everything after the join and
// refinements inside it stay in scope. One identifier is special: a
// condition that is exactly the identifier debugChecks is treated as
// constant true regardless of the build's actual constant value. The
// repo's assertion layer wraps its checks in `if debugChecks { ... }`
// blocks that compile to nothing by default and panic on violation
// under -tags debugchecks; DESIGN.md documents them as executable,
// CI-verified trust annotations, and varintbounds already credits
// assert* calls as audits. Treating the guard as true makes the
// assertion body dominate the code it protects, so an
// `assertf(P, ...)` call refines the variables P mentions for
// everything downstream — the numeric layer's version of the same
// accommodation.
package ssa

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"strings"

	"cfpgrowth/internal/analysis/cfg"
)

// Kind classifies an SSA value.
type Kind int

const (
	// Unknown is a value with no modeled origin: a use before any def
	// (dead code, untracked flows). Consumers treat it as ⊤.
	Unknown Kind = iota
	// Param is a function parameter or receiver at entry.
	Param
	// ZeroInit is an implicit zero value: a var declaration without an
	// initializer, or a named result at entry.
	ZeroInit
	// Def is an explicit definition (assignment, op-assignment,
	// inc/dec, range binding).
	Def
	// Phi merges the versions arriving over a join block's predecessor
	// edges.
	Phi
	// Refine narrows a version through one polarity of an atomic
	// branch condition that mentions the variable.
	Refine
)

// RangeRole distinguishes what a range statement binds a variable to.
type RangeRole int

const (
	// NotRange marks a non-range definition.
	NotRange RangeRole = iota
	// RangeIndex is the key of a range over a slice, array, string, or
	// integer: an int in [0, len(X)-1] (or [0, X-1] for integers).
	RangeIndex
	// RangeValue is the element value: unconstrained.
	RangeValue
)

// A Value is one SSA version of one source variable.
type Value struct {
	// ID is the value's position in Func.Values.
	ID int
	// Kind classifies the origin.
	Kind Kind
	// Var is the source variable this value versions.
	Var *types.Var
	// Block is the CFG block the value is created in (nil for Unknown).
	Block *cfg.Block

	// Expr, for a Def from a plain assignment x = Expr (or the operand
	// of an op-assignment x op= Expr), is the right-hand side. A Def
	// with no Expr, Call, Range, and zero Op is opaque (multi-value
	// non-call assignment, type-switch binding): treat as ⊤.
	Expr ast.Expr
	// Op, when not token.ILLEGAL, is the op-assignment token (ADD_ASSIGN,
	// SHR_ASSIGN, ...) or token.INC / token.DEC; the new value is
	// X (op) Expr, with Expr nil meaning the constant 1 for INC/DEC.
	Op token.Token
	// X is the prior version consumed by an op-assignment or inc/dec,
	// or the version a Refine narrows.
	X *Value

	// Call and Index identify one result slot of a multi-value call
	// assignment x, y := f().
	Call  *ast.CallExpr
	Index int

	// Range and Role describe a range-statement binding.
	Range *ast.RangeStmt
	Role  RangeRole

	// Args, for a Phi, holds the version arriving over each predecessor
	// edge of Block, parallel to Func.Preds of that block. A nil arg
	// marks an edge from an unreachable predecessor.
	Args []*Value

	// Cond and Taken, for a Refine, give the atomic condition and the
	// polarity of the edge the refinement lives on. The condition's
	// identifiers were resolved in the predecessor block, so
	// Func.UseOf maps them to the versions the condition tested.
	Cond  ast.Expr
	Taken bool
}

// A PredEdge is one incoming edge of a block.
type PredEdge struct {
	From *cfg.Block
	Edge cfg.Edge
}

// A Func is the SSA form of one function body.
type Func struct {
	// Graph is the underlying CFG.
	Graph *cfg.Graph
	// Values lists every value, indexed by ID.
	Values []*Value
	// UseOf resolves an identifier *use* of a tracked variable to the
	// version in scope at that point. Identifiers of untracked
	// variables (and uses in unreachable code) are absent.
	UseOf map[*ast.Ident]*Value
	// DefOf maps a defining identifier occurrence to the Value the
	// definition created.
	DefOf map[*ast.Ident]*Value
	// Uses is the def-use chain: for each value, the values whose
	// origin consumes it (phi operands, refine inputs, op-assign
	// inputs, and identifiers inside defining expressions).
	Uses map[*Value][]*Value
	// Params holds the Param values in declaration order (receiver
	// first when present).
	Params []*Value
	// Preds lists each block's incoming edges (by block index),
	// parallel to the Args of any phi in that block.
	Preds [][]PredEdge

	tracked map[*types.Var]bool
	unknown map[*types.Var]*Value
	info    *types.Info
	reach   []bool // per block index, after constant-edge pruning
}

// Tracked reports whether the variable is modeled by this SSA form.
func (f *Func) Tracked(v *types.Var) bool { return f.tracked[v] }

// Reachable reports whether the block survives constant-edge pruning
// (code behind a constant-false condition is unreachable).
func (f *Func) Reachable(b *cfg.Block) bool {
	return b != nil && b.Index < len(f.reach) && f.reach[b.Index]
}

// Obj resolves an identifier to the variable it uses or defines, or
// nil.
func (f *Func) Obj(id *ast.Ident) *types.Var {
	if o, ok := f.info.Defs[id]; ok {
		if v, ok := o.(*types.Var); ok {
			return v
		}
		return nil
	}
	if v, ok := f.info.Uses[id].(*types.Var); ok {
		return v
	}
	return nil
}

// Build constructs the SSA form of fd's body over its CFG. The graph
// must have been built from fd.Body.
func Build(fd *ast.FuncDecl, g *cfg.Graph, info *types.Info) *Func {
	fn := &Func{
		Graph:   g,
		UseOf:   map[*ast.Ident]*Value{},
		DefOf:   map[*ast.Ident]*Value{},
		Uses:    map[*Value][]*Value{},
		tracked: map[*types.Var]bool{},
		unknown: map[*types.Var]*Value{},
		info:    info,
	}
	b := &builder{fn: fn, g: g, info: info}
	b.collectTracked(fd)
	b.buildPreds()
	b.dominators()
	fn.reach = make([]bool, len(g.Blocks))
	for bi, n := range b.rpoNum {
		fn.reach[bi] = n >= 0
	}
	b.scanDefs(fd)
	b.liveness()
	b.placePhis()
	b.stacks = map[*types.Var][]*Value{}
	b.visit(g.Entry.Index, fd)
	b.defUse()
	return fn
}

type builder struct {
	fn   *Func
	g    *cfg.Graph
	info *types.Info

	rpo    []int // reachable blocks in reverse post-order
	rpoNum []int // block index -> position in rpo, -1 if unreachable
	idom   []int // block index -> immediate dominator block index
	child  [][]int

	events [][]refEvent // per block: variable reference events in order

	gen, kill, liveIn []map[*types.Var]bool

	defBlocks map[*types.Var]map[int]bool
	phis      [][]*Value // per block

	stacks map[*types.Var][]*Value
}

// refEvent is one ordered step of variable references inside a CFG
// node: the identifiers read, then the definitions made.
type refEvent struct {
	uses []*ast.Ident
	defs []defSite
}

type defSite struct {
	id    *ast.Ident
	v     *types.Var
	kind  Kind // Def, ZeroInit, or Refine (assert-call assumption)
	expr  ast.Expr
	op    token.Token
	call  *ast.CallExpr
	index int
	rng   *ast.RangeStmt
	role  RangeRole
	cond  ast.Expr // Refine: the assumed atomic condition
}

// collectTracked gathers the local variables the SSA form versions:
// parameters, receiver, named results, and body-declared locals,
// minus anything address-taken or referenced inside a function
// literal.
func (b *builder) collectTracked(fd *ast.FuncDecl) {
	add := func(id *ast.Ident) {
		if id == nil || id.Name == "_" {
			return
		}
		if v, ok := b.info.Defs[id].(*types.Var); ok && !v.IsField() {
			b.fn.tracked[v] = true
		}
	}
	if fd.Recv != nil {
		for _, f := range fd.Recv.List {
			for _, n := range f.Names {
				add(n)
			}
		}
	}
	if fd.Type.Params != nil {
		for _, f := range fd.Type.Params.List {
			for _, n := range f.Names {
				add(n)
			}
		}
	}
	if fd.Type.Results != nil {
		for _, f := range fd.Type.Results.List {
			for _, n := range f.Names {
				add(n)
			}
		}
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok {
			add(id)
		}
		return true
	})
	// Exclusions. Address-taken: every identifier under a unary & may
	// alias the variable through the resulting pointer. Closure
	// capture: a variable referenced inside a function literal can be
	// redefined on any call, which the CFG does not model.
	drop := func(n ast.Node) {
		ast.Inspect(n, func(m ast.Node) bool {
			if id, ok := m.(*ast.Ident); ok {
				if v, ok := b.info.Defs[id].(*types.Var); ok {
					delete(b.fn.tracked, v)
				}
				if v, ok := b.info.Uses[id].(*types.Var); ok {
					delete(b.fn.tracked, v)
				}
			}
			return true
		})
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.UnaryExpr:
			if n.Op == token.AND {
				drop(n.X)
			}
		case *ast.FuncLit:
			drop(n.Body)
			return false
		}
		return true
	})
}

// liveEdge reports whether a CFG edge can be taken: edges whose atomic
// condition is a boolean constant of the opposite polarity are pruned,
// with the identifier debugChecks forced to true (see the package
// comment).
func (b *builder) liveEdge(e cfg.Edge) bool {
	if e.Cond == nil {
		return true
	}
	if id, ok := ast.Unparen(e.Cond).(*ast.Ident); ok && id.Name == "debugChecks" {
		return e.Taken
	}
	if tv, ok := b.info.Types[e.Cond]; ok && tv.Value != nil && tv.Value.Kind() == constant.Bool {
		return constant.BoolVal(tv.Value) == e.Taken
	}
	return true
}

func (b *builder) buildPreds() {
	b.fn.Preds = make([][]PredEdge, len(b.g.Blocks))
	for _, blk := range b.g.Blocks {
		for _, e := range blk.Succs {
			if !b.liveEdge(e) {
				continue
			}
			b.fn.Preds[e.To.Index] = append(b.fn.Preds[e.To.Index], PredEdge{From: blk, Edge: e})
		}
	}
}

// dominators computes reverse post-order, immediate dominators
// (Cooper–Harvey–Kennedy iteration), and the dominator-tree children
// lists over the blocks reachable from entry.
func (b *builder) dominators() {
	n := len(b.g.Blocks)
	b.rpoNum = make([]int, n)
	for i := range b.rpoNum {
		b.rpoNum[i] = -1
	}
	var post []int
	seen := make([]bool, n)
	var dfs func(bi int)
	dfs = func(bi int) {
		seen[bi] = true
		for _, e := range b.g.Blocks[bi].Succs {
			if b.liveEdge(e) && !seen[e.To.Index] {
				dfs(e.To.Index)
			}
		}
		post = append(post, bi)
	}
	dfs(b.g.Entry.Index)
	b.rpo = make([]int, len(post))
	for i := range post {
		b.rpo[i] = post[len(post)-1-i]
		b.rpoNum[b.rpo[i]] = i
	}

	b.idom = make([]int, n)
	for i := range b.idom {
		b.idom[i] = -1
	}
	entry := b.g.Entry.Index
	b.idom[entry] = entry
	intersect := func(x, y int) int {
		for x != y {
			for b.rpoNum[x] > b.rpoNum[y] {
				x = b.idom[x]
			}
			for b.rpoNum[y] > b.rpoNum[x] {
				y = b.idom[y]
			}
		}
		return x
	}
	for changed := true; changed; {
		changed = false
		for _, bi := range b.rpo[1:] {
			newIdom := -1
			for _, pe := range b.fn.Preds[bi] {
				p := pe.From.Index
				if b.rpoNum[p] < 0 || b.idom[p] < 0 {
					continue
				}
				if newIdom < 0 {
					newIdom = p
				} else {
					newIdom = intersect(p, newIdom)
				}
			}
			if newIdom >= 0 && b.idom[bi] != newIdom {
				b.idom[bi] = newIdom
				changed = true
			}
		}
	}
	b.child = make([][]int, n)
	for _, bi := range b.rpo[1:] {
		b.child[b.idom[bi]] = append(b.child[b.idom[bi]], bi)
	}
}

// scanDefs extracts every block's reference events and records which
// blocks define which variables (entry implicitly defines parameters
// and named results).
func (b *builder) scanDefs(fd *ast.FuncDecl) {
	b.events = make([][]refEvent, len(b.g.Blocks))
	b.defBlocks = map[*types.Var]map[int]bool{}
	record := func(v *types.Var, bi int) {
		m := b.defBlocks[v]
		if m == nil {
			m = map[int]bool{}
			b.defBlocks[v] = m
		}
		m[bi] = true
	}
	for v := range b.fn.tracked {
		// Parameters, receiver, and named results are defined at entry;
		// body locals get their def blocks from the scan below. Marking
		// every tracked var at entry is harmless for locals (no phi is
		// placed where the variable is dead, and locals are dead before
		// their first def).
		record(v, b.g.Entry.Index)
	}
	for _, blk := range b.g.Blocks {
		for _, n := range blk.Nodes {
			evs := b.nodeRefs(n)
			b.events[blk.Index] = append(b.events[blk.Index], evs...)
			for _, ev := range evs {
				for _, d := range ev.defs {
					if d.kind != Refine {
						record(d.v, blk.Index)
					}
				}
			}
		}
	}
}

// obj resolves a (possibly defining) identifier to its variable.
func (b *builder) obj(id *ast.Ident) *types.Var {
	if o, ok := b.info.Defs[id]; ok {
		v, _ := o.(*types.Var)
		return v
	}
	v, _ := b.info.Uses[id].(*types.Var)
	return v
}

// collectUses gathers identifiers of tracked variables read inside n,
// skipping function-literal bodies and the given written identifiers.
func (b *builder) collectUses(n ast.Node, skip map[*ast.Ident]bool) []*ast.Ident {
	var out []*ast.Ident
	if n == nil {
		return nil
	}
	ast.Inspect(n, func(m ast.Node) bool {
		if _, ok := m.(*ast.FuncLit); ok {
			return false
		}
		if id, ok := m.(*ast.Ident); ok && !skip[id] {
			if v, ok := b.info.Uses[id].(*types.Var); ok && b.fn.tracked[v] {
				out = append(out, id)
			}
		}
		return true
	})
	return out
}

// nodeRefs lists the ordered variable-reference events of one CFG
// node.
func (b *builder) nodeRefs(n ast.Node) []refEvent {
	switch n := n.(type) {
	case *ast.AssignStmt:
		return b.assignRefs(n)
	case *ast.IncDecStmt:
		if id, ok := ast.Unparen(n.X).(*ast.Ident); ok {
			if v := b.obj(id); v != nil && b.fn.tracked[v] {
				return []refEvent{{
					uses: b.collectUses(n.X, nil),
					defs: []defSite{{id: id, v: v, kind: Def, op: n.Tok}},
				}}
			}
		}
		return []refEvent{{uses: b.collectUses(n, nil)}}
	case *ast.DeclStmt:
		gd, ok := n.Decl.(*ast.GenDecl)
		if !ok || gd.Tok != token.VAR {
			return []refEvent{{uses: b.collectUses(n, nil)}}
		}
		var evs []refEvent
		for _, spec := range gd.Specs {
			vs, ok := spec.(*ast.ValueSpec)
			if !ok {
				continue
			}
			ev := refEvent{}
			for _, val := range vs.Values {
				ev.uses = append(ev.uses, b.collectUses(val, nil)...)
			}
			ev.uses = append(ev.uses, b.collectUses(vs.Type, nil)...)
			for i, name := range vs.Names {
				v := b.obj(name)
				if v == nil || !b.fn.tracked[v] {
					continue
				}
				d := defSite{id: name, v: v}
				switch {
				case len(vs.Values) == 0:
					d.kind = ZeroInit
				case len(vs.Values) == len(vs.Names):
					d.kind, d.expr = Def, vs.Values[i]
				default: // var a, b = f()
					d.kind, d.index = Def, i
					d.call, _ = ast.Unparen(vs.Values[0]).(*ast.CallExpr)
				}
				ev.defs = append(ev.defs, d)
			}
			evs = append(evs, ev)
		}
		return evs
	case cfg.RangeHead:
		s := n.Range
		ev := refEvent{}
		bind := func(e ast.Expr, role RangeRole) {
			id, ok := e.(*ast.Ident)
			if !ok {
				return
			}
			v := b.obj(id)
			if v == nil || !b.fn.tracked[v] {
				return
			}
			ev.defs = append(ev.defs, defSite{id: id, v: v, kind: Def, rng: s, role: role})
		}
		if s.Key != nil {
			bind(s.Key, b.keyRole(s))
		}
		if s.Value != nil {
			bind(s.Value, RangeValue)
		}
		// The range expression's identifiers were bound where the CFG
		// placed the expression itself (before the loop), matching
		// range semantics: the ranged value is captured once.
		return []refEvent{ev}
	case *ast.ExprStmt:
		ev := refEvent{uses: b.collectUses(n, nil)}
		ev.defs = b.assertRefs(n)
		return []refEvent{ev}
	case ast.Stmt:
		return []refEvent{{uses: b.collectUses(n, nil)}}
	case ast.Expr:
		return []refEvent{{uses: b.collectUses(n, nil)}}
	}
	return nil
}

// assertRefs recognizes the repo's assertion convention: an expression
// statement calling a function whose name starts with "assert" assumes
// its first argument from that point on (see the package comment). The
// condition is decomposed through && into atomic conjuncts, each
// yielding a Refine for the numeric variables it mentions.
func (b *builder) assertRefs(n *ast.ExprStmt) []defSite {
	call, ok := ast.Unparen(n.X).(*ast.CallExpr)
	if !ok || len(call.Args) == 0 {
		return nil
	}
	var name string
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		name = fun.Name
	case *ast.SelectorExpr:
		name = fun.Sel.Name
	}
	if !strings.HasPrefix(name, "assert") {
		return nil
	}
	var defs []defSite
	var conj func(e ast.Expr)
	conj = func(e ast.Expr) {
		e = ast.Unparen(e)
		if be, ok := e.(*ast.BinaryExpr); ok && be.Op == token.LAND {
			conj(be.X)
			conj(be.Y)
			return
		}
		seen := map[*types.Var]bool{}
		for _, id := range b.collectUses(e, nil) {
			v, _ := b.info.Uses[id].(*types.Var)
			if v == nil || seen[v] || !numericOrBool(v) {
				continue
			}
			seen[v] = true
			defs = append(defs, defSite{id: id, v: v, kind: Refine, cond: e})
		}
	}
	conj(call.Args[0])
	return defs
}

// keyRole reports what the range key variable iterates over.
func (b *builder) keyRole(s *ast.RangeStmt) RangeRole {
	tv, ok := b.info.Types[s.X]
	if !ok {
		return RangeValue
	}
	t := tv.Type.Underlying()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem().Underlying()
	}
	switch t := t.(type) {
	case *types.Slice, *types.Array:
		return RangeIndex
	case *types.Basic:
		if t.Info()&(types.IsString|types.IsInteger) != 0 {
			return RangeIndex
		}
	}
	return RangeValue // map keys, channel elements
}

func (b *builder) assignRefs(n *ast.AssignStmt) []refEvent {
	ev := refEvent{}
	skip := map[*ast.Ident]bool{}
	if n.Tok == token.ASSIGN || n.Tok == token.DEFINE {
		for _, l := range n.Lhs {
			if id, ok := ast.Unparen(l).(*ast.Ident); ok {
				skip[id] = true
			}
		}
	}
	ev.uses = b.collectUses(n, skip)
	mkDef := func(l ast.Expr) (defSite, bool) {
		id, ok := ast.Unparen(l).(*ast.Ident)
		if !ok || id.Name == "_" {
			return defSite{}, false
		}
		v := b.obj(id)
		if v == nil || !b.fn.tracked[v] {
			return defSite{}, false
		}
		return defSite{id: id, v: v, kind: Def}, true
	}
	switch {
	case n.Tok == token.ASSIGN || n.Tok == token.DEFINE:
		if len(n.Rhs) == len(n.Lhs) {
			for i, l := range n.Lhs {
				if d, ok := mkDef(l); ok {
					d.expr = n.Rhs[i]
					ev.defs = append(ev.defs, d)
				}
			}
		} else { // x, y := f()  /  v, ok := m[k]  /  v, ok := x.(T)
			call, _ := ast.Unparen(n.Rhs[0]).(*ast.CallExpr)
			for i, l := range n.Lhs {
				if d, ok := mkDef(l); ok {
					d.call, d.index = call, i
					ev.defs = append(ev.defs, d)
				}
			}
		}
	default: // op-assignment: x op= e reads x and writes x
		if len(n.Lhs) == 1 && len(n.Rhs) == 1 {
			if d, ok := mkDef(n.Lhs[0]); ok {
				d.op, d.expr = n.Tok, n.Rhs[0]
				ev.defs = append(ev.defs, d)
			}
		}
	}
	return []refEvent{ev}
}

// liveness computes per-block live-in variable sets by backward
// iteration, the pruning input for phi placement.
func (b *builder) liveness() {
	n := len(b.g.Blocks)
	b.gen = make([]map[*types.Var]bool, n)
	b.kill = make([]map[*types.Var]bool, n)
	b.liveIn = make([]map[*types.Var]bool, n)
	for i := 0; i < n; i++ {
		b.gen[i] = map[*types.Var]bool{}
		b.kill[i] = map[*types.Var]bool{}
		b.liveIn[i] = map[*types.Var]bool{}
		for _, ev := range b.events[i] {
			for _, id := range ev.uses {
				v, _ := b.info.Uses[id].(*types.Var)
				if v != nil && b.fn.tracked[v] && !b.kill[i][v] {
					b.gen[i][v] = true
				}
			}
			for _, d := range ev.defs {
				// An op-assign or inc/dec reads the variable too, and an
				// assert refinement only reads it (the unrefined version
				// still reaches later blocks at joins).
				if (d.op != token.ILLEGAL || d.kind == Refine) && !b.kill[i][d.v] {
					b.gen[i][d.v] = true
				}
				if d.kind != Refine {
					b.kill[i][d.v] = true
				}
			}
		}
	}
	for changed := true; changed; {
		changed = false
		for i := len(b.rpo) - 1; i >= 0; i-- {
			bi := b.rpo[i]
			for _, e := range b.g.Blocks[bi].Succs {
				if !b.liveEdge(e) {
					continue
				}
				for v := range b.liveIn[e.To.Index] {
					if !b.kill[bi][v] && !b.liveIn[bi][v] && !b.gen[bi][v] {
						b.gen[bi][v] = true
						changed = true
					}
				}
			}
			for v := range b.gen[bi] {
				if !b.liveIn[bi][v] {
					b.liveIn[bi][v] = true
					changed = true
				}
			}
		}
	}
}

// placePhis places pruned phis at the iterated dominance frontier of
// each variable's definition blocks.
func (b *builder) placePhis() {
	// Dominance frontiers.
	df := make([]map[int]bool, len(b.g.Blocks))
	for _, bi := range b.rpo {
		var rp []int
		for _, pe := range b.fn.Preds[bi] {
			if b.rpoNum[pe.From.Index] >= 0 {
				rp = append(rp, pe.From.Index)
			}
		}
		if len(rp) < 2 {
			continue
		}
		for _, p := range rp {
			for r := p; r != b.idom[bi]; r = b.idom[r] {
				if df[r] == nil {
					df[r] = map[int]bool{}
				}
				df[r][bi] = true
			}
		}
	}
	b.phis = make([][]*Value, len(b.g.Blocks))
	for v, defs := range b.defBlocks {
		work := make([]int, 0, len(defs))
		for bi := range defs {
			work = append(work, bi)
		}
		placed := map[int]bool{}
		for len(work) > 0 {
			d := work[len(work)-1]
			work = work[:len(work)-1]
			for f := range df[d] {
				if placed[f] || !b.liveIn[f][v] {
					continue
				}
				placed[f] = true
				phi := b.newValue(&Value{
					Kind:  Phi,
					Var:   v,
					Block: b.g.Blocks[f],
					Args:  make([]*Value, len(b.fn.Preds[f])),
				})
				b.phis[f] = append(b.phis[f], phi)
				if !defs[f] {
					defs[f] = true
					work = append(work, f)
				}
			}
		}
	}
}

func (b *builder) newValue(v *Value) *Value {
	v.ID = len(b.fn.Values)
	b.fn.Values = append(b.fn.Values, v)
	return v
}

func (b *builder) top(v *types.Var) *Value {
	if s := b.stacks[v]; len(s) > 0 {
		return s[len(s)-1]
	}
	u := b.fn.unknown[v]
	if u == nil {
		u = b.newValue(&Value{Kind: Unknown, Var: v})
		b.fn.unknown[v] = u
	}
	return u
}

// numericOrBool reports whether refining the variable is useful: a
// slice or struct gains nothing from a comparison refinement, and
// re-versioning a slice would break the version identity that
// symbolic len-bounds depend on.
func numericOrBool(v *types.Var) bool {
	bt, ok := v.Type().Underlying().(*types.Basic)
	return ok && bt.Info()&(types.IsInteger|types.IsBoolean|types.IsFloat) != 0
}

// visit renames one dominator-tree subtree.
func (b *builder) visit(bi int, fd *ast.FuncDecl) {
	var pushed []*types.Var
	push := func(v *types.Var, val *Value) {
		b.stacks[v] = append(b.stacks[v], val)
		pushed = append(pushed, v)
	}
	blk := b.g.Blocks[bi]

	for _, phi := range b.phis[bi] {
		push(phi.Var, phi)
	}
	// Synthetic entry definitions: receiver, parameters, named results.
	if bi == b.g.Entry.Index {
		bindFields := func(fl *ast.FieldList, kind Kind) {
			if fl == nil {
				return
			}
			for _, f := range fl.List {
				for _, name := range f.Names {
					v, _ := b.info.Defs[name].(*types.Var)
					if v == nil || !b.fn.tracked[v] {
						continue
					}
					val := b.newValue(&Value{Kind: kind, Var: v, Block: blk})
					b.fn.DefOf[name] = val
					if kind == Param {
						b.fn.Params = append(b.fn.Params, val)
					}
					push(v, val)
				}
			}
		}
		bindFields(fd.Recv, Param)
		bindFields(fd.Type.Params, Param)
		bindFields(fd.Type.Results, ZeroInit)
	}
	// Branch-condition refinement: a block entered only over one
	// conditional edge knows the atomic condition's outcome.
	if pes := b.fn.Preds[bi]; len(pes) == 1 && pes[0].Edge.Cond != nil {
		cond, taken := pes[0].Edge.Cond, pes[0].Edge.Taken
		for _, id := range b.collectUses(cond, nil) {
			v, _ := b.info.Uses[id].(*types.Var)
			if v == nil || !numericOrBool(v) {
				continue
			}
			rv := b.newValue(&Value{
				Kind:  Refine,
				Var:   v,
				Block: blk,
				X:     b.top(v),
				Cond:  cond,
				Taken: taken,
			})
			push(v, rv)
		}
	}

	for _, ev := range b.events[bi] {
		for _, id := range ev.uses {
			if v, ok := b.info.Uses[id].(*types.Var); ok && b.fn.tracked[v] {
				b.fn.UseOf[id] = b.top(v)
			}
		}
		for _, d := range ev.defs {
			if d.kind == Refine {
				rv := b.newValue(&Value{
					Kind:  Refine,
					Var:   d.v,
					Block: blk,
					X:     b.top(d.v),
					Cond:  d.cond,
					Taken: true,
				})
				push(d.v, rv)
				continue
			}
			val := b.newValue(&Value{
				Kind:  d.kind,
				Var:   d.v,
				Block: blk,
				Expr:  d.expr,
				Op:    d.op,
				Call:  d.call,
				Index: d.index,
				Range: d.rng,
				Role:  d.role,
			})
			if d.op != token.ILLEGAL {
				val.X = b.top(d.v)
			}
			b.fn.DefOf[d.id] = val
			push(d.v, val)
		}
	}

	// Fill the phi argument slots of every successor reached from here.
	for _, e := range blk.Succs {
		if !b.liveEdge(e) {
			continue
		}
		ti := e.To.Index
		for slot, pe := range b.fn.Preds[ti] {
			if pe.From != blk {
				continue
			}
			for _, phi := range b.phis[ti] {
				phi.Args[slot] = b.top(phi.Var)
			}
		}
	}

	for _, c := range b.child[bi] {
		b.visit(c, fd)
	}

	for i := len(pushed) - 1; i >= 0; i-- {
		v := pushed[i]
		b.stacks[v] = b.stacks[v][:len(b.stacks[v])-1]
	}
}

// defUse fills Func.Uses from each value's origin.
func (b *builder) defUse() {
	add := func(consumer, input *Value) {
		if input == nil {
			return
		}
		b.fn.Uses[input] = append(b.fn.Uses[input], consumer)
	}
	exprDeps := func(consumer *Value, e ast.Node) {
		if e == nil {
			return
		}
		ast.Inspect(e, func(m ast.Node) bool {
			if _, ok := m.(*ast.FuncLit); ok {
				return false
			}
			if id, ok := m.(*ast.Ident); ok {
				add(consumer, b.fn.UseOf[id])
			}
			return true
		})
	}
	for _, v := range b.fn.Values {
		switch v.Kind {
		case Phi:
			for _, a := range v.Args {
				add(v, a)
			}
		case Refine:
			add(v, v.X)
			exprDeps(v, v.Cond)
		case Def:
			add(v, v.X)
			exprDeps(v, v.Expr)
			if v.Range != nil {
				exprDeps(v, v.Range.X)
			}
		}
	}
}
