package ssa

import (
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"testing"

	"cfpgrowth/internal/analysis/cfg"
)

// buildFn typechecks src and builds the SSA form of the named
// function.
func buildFn(t *testing.T, src, name string) (*ast.FuncDecl, *Func) {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "x.go", src, 0)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	info := &types.Info{
		Types: map[ast.Expr]types.TypeAndValue{},
		Defs:  map[*ast.Ident]types.Object{},
		Uses:  map[*ast.Ident]types.Object{},
	}
	conf := types.Config{Importer: importer.Default()}
	if _, err := conf.Check("p", fset, []*ast.File{f}, info); err != nil {
		t.Fatalf("typecheck: %v", err)
	}
	for _, d := range f.Decls {
		if fd, ok := d.(*ast.FuncDecl); ok && fd.Name.Name == name {
			return fd, Build(fd, cfg.New(fd.Body), info)
		}
	}
	t.Fatalf("function %s not found", name)
	return nil, nil
}

// useOf returns the SSA value of the n-th use (0-based, source order)
// of the named identifier.
func useOf(t *testing.T, fd *ast.FuncDecl, fn *Func, name string, n int) *Value {
	t.Helper()
	var vals []*Value
	ast.Inspect(fd.Body, func(m ast.Node) bool {
		if id, ok := m.(*ast.Ident); ok && id.Name == name {
			if v, ok := fn.UseOf[id]; ok {
				vals = append(vals, v)
			}
		}
		return true
	})
	if n >= len(vals) {
		t.Fatalf("ident %q has %d resolved uses, want at least %d", name, len(vals), n+1)
	}
	return vals[n]
}

func TestStraightLineVersions(t *testing.T) {
	src := `package p
func f() int {
	x := 1
	x = x + 2
	return x
}`
	fd, fn := buildFn(t, src, "f")
	first := useOf(t, fd, fn, "x", 0)  // x in x+2
	second := useOf(t, fd, fn, "x", 1) // x in return
	if first == second {
		t.Error("use before and after the second assignment must be different versions")
	}
	if first.Kind != Def || second.Kind != Def {
		t.Errorf("kinds = %v, %v, want Def, Def", first.Kind, second.Kind)
	}
	if second.Expr == nil {
		t.Error("second version should carry its defining expression")
	}
}

func TestPhiAtJoin(t *testing.T) {
	src := `package p
func f(c bool) int {
	x := 0
	if c {
		x = 1
	}
	return x
}`
	fd, fn := buildFn(t, src, "f")
	ret := useOf(t, fd, fn, "x", 0)
	if ret.Kind != Phi {
		t.Fatalf("use at join has kind %v, want Phi", ret.Kind)
	}
	var defs int
	for _, a := range ret.Args {
		if a != nil && a.Kind == Def {
			defs++
		}
	}
	if defs != 2 {
		t.Errorf("phi merges %d defs, want 2 (x=0 and x=1)", defs)
	}
}

func TestPrunedPhiOmittedWhenDead(t *testing.T) {
	src := `package p
func f(c bool) int {
	x := 0
	if c {
		x = 1
	}
	_ = x
	y := 2
	return y
}`
	_, fn := buildFn(t, src, "f")
	// y is defined once after the join; no phi should exist for y.
	for _, v := range fn.Values {
		if v.Kind == Phi && v.Var.Name() == "y" {
			t.Error("dead-at-join variable y got a phi")
		}
	}
}

func TestBranchRefinement(t *testing.T) {
	src := `package p
func f(i, n int) int {
	if i < n {
		return i
	}
	return 0
}`
	fd, fn := buildFn(t, src, "f")
	// The i in `return i` must be a Refine on the true edge of i < n.
	use := useOf(t, fd, fn, "i", 1)
	if use.Kind != Refine {
		t.Fatalf("guarded use has kind %v, want Refine", use.Kind)
	}
	if !use.Taken {
		t.Error("refinement polarity should be the taken (true) edge")
	}
	be, ok := use.Cond.(*ast.BinaryExpr)
	if !ok || be.Op != token.LSS {
		t.Errorf("refinement condition is %T, want the i < n comparison", use.Cond)
	}
	if use.X == nil || use.X.Kind != Param {
		t.Error("refinement must wrap the parameter version")
	}
}

func TestChainedRefinementThroughShortCircuit(t *testing.T) {
	src := `package p
func f(i, n int) int {
	if i >= 0 && i < n {
		return i
	}
	return 0
}`
	fd, fn := buildFn(t, src, "f")
	use := useOf(t, fd, fn, "i", 2) // i in return i (after the two cond uses)
	if use.Kind != Refine {
		t.Fatalf("guarded use has kind %v, want Refine", use.Kind)
	}
	if use.X == nil || use.X.Kind != Refine {
		t.Fatalf("short-circuit guard should chain refinements, inner kind = %v", use.X.Kind)
	}
}

func TestLoopPhiAndPostLoopRefinement(t *testing.T) {
	src := `package p
func f(n int) int {
	i := 0
	for i < n {
		i++
	}
	return i
}`
	fd, fn := buildFn(t, src, "f")
	condUse := useOf(t, fd, fn, "i", 0) // i in i < n
	if condUse.Kind != Phi {
		t.Fatalf("loop-head use has kind %v, want Phi", condUse.Kind)
	}
	ret := useOf(t, fd, fn, "i", 2) // i in return
	if ret.Kind != Refine || ret.Taken {
		t.Errorf("post-loop use should be the false-edge refinement, got kind %v taken %v", ret.Kind, ret.Taken)
	}
	// The increment consumes the body refinement of the head phi.
	var inc *Value
	for _, v := range fn.Values {
		if v.Kind == Def && v.Op == token.INC {
			inc = v
		}
	}
	if inc == nil {
		t.Fatal("no Def for i++")
	}
	if inc.X == nil || inc.X.Kind != Refine || !inc.X.Taken {
		t.Errorf("i++ should consume the true-edge refinement, got %+v", inc.X)
	}
}

func TestAddressTakenUntracked(t *testing.T) {
	src := `package p
func g(*int) {}
func f() int {
	x := 1
	g(&x)
	return x
}`
	fd, fn := buildFn(t, src, "f")
	found := false
	ast.Inspect(fd.Body, func(m ast.Node) bool {
		if id, ok := m.(*ast.Ident); ok && id.Name == "x" {
			if _, ok := fn.UseOf[id]; ok {
				found = true
			}
		}
		return true
	})
	if found {
		t.Error("address-taken variable must not resolve to SSA values")
	}
}

func TestClosureCaptureUntracked(t *testing.T) {
	src := `package p
func f() int {
	x := 1
	g := func() { x = 2 }
	g()
	return x
}`
	fd, fn := buildFn(t, src, "f")
	ast.Inspect(fd.Body, func(m ast.Node) bool {
		if id, ok := m.(*ast.Ident); ok && id.Name == "x" {
			if _, ok := fn.UseOf[id]; ok {
				t.Error("closure-captured variable must not resolve to SSA values")
			}
		}
		return true
	})
}

func TestRangeIndexRole(t *testing.T) {
	src := `package p
func f(xs []int) int {
	s := 0
	for i := range xs {
		s += i
	}
	return s
}`
	_, fn := buildFn(t, src, "f")
	var idx *Value
	for _, v := range fn.Values {
		if v.Kind == Def && v.Role == RangeIndex {
			idx = v
		}
	}
	if idx == nil {
		t.Fatal("no RangeIndex definition for i")
	}
	if idx.Range == nil {
		t.Error("range definition must reference its range statement")
	}
}

func TestMultiValueCallDef(t *testing.T) {
	src := `package p
func two() (int, int) { return 1, 2 }
func f() int {
	a, b := two()
	return a + b
}`
	fd, fn := buildFn(t, src, "f")
	a := useOf(t, fd, fn, "a", 0)
	b := useOf(t, fd, fn, "b", 0)
	if a.Call == nil || b.Call == nil {
		t.Fatal("tuple-call definitions must record the call")
	}
	if a.Index != 0 || b.Index != 1 {
		t.Errorf("result slots = %d, %d, want 0, 1", a.Index, b.Index)
	}
}

func TestDefUseChains(t *testing.T) {
	src := `package p
func f(n int) int {
	x := n
	y := x + 1
	return y
}`
	fd, fn := buildFn(t, src, "f")
	xv := useOf(t, fd, fn, "x", 0)
	yv := useOf(t, fd, fn, "y", 0)
	found := false
	for _, u := range fn.Uses[xv] {
		if u == yv {
			found = true
		}
	}
	if !found {
		t.Error("def-use chain of x must include the definition of y")
	}
}

func TestAssertRefinementSurvivesDebugChecksJoin(t *testing.T) {
	// The repo's assertion convention: with the debugChecks guard
	// treated as constant true, the assertion body dominates the code
	// after the join, so the assumption stays in scope.
	src := `package p
const debugChecks = false
func assertf(cond bool, msg string) {}
func f(d uint64) uint64 {
	if debugChecks {
		assertf(d >= 1, "delta must be positive")
	}
	return d
}`
	fd, fn := buildFn(t, src, "f")
	ret := useOf(t, fd, fn, "d", 1) // d in return (after the assert's use)
	if ret.Kind != Refine {
		t.Fatalf("post-assert use has kind %v, want Refine", ret.Kind)
	}
	be, ok := ret.Cond.(*ast.BinaryExpr)
	if !ok || be.Op != token.GEQ {
		t.Errorf("assert refinement condition is %T, want d >= 1", ret.Cond)
	}
	if !ret.Taken {
		t.Error("assert refinement must assume the condition true")
	}
}

func TestConstantFalseBranchPruned(t *testing.T) {
	src := `package p
const never = false
func f(x int) int {
	y := 1
	if never {
		y = 2
	}
	return y + x
}`
	fd, fn := buildFn(t, src, "f")
	// With the constant-false arm pruned there is no join: the use of
	// y must be the y=1 definition, not a phi.
	use := useOf(t, fd, fn, "y", 0)
	if use.Kind != Def {
		t.Errorf("use after pruned branch has kind %v, want Def (no phi)", use.Kind)
	}
}

func TestAssertConjunctionSplitsRefinements(t *testing.T) {
	src := `package p
const debugChecks = true
func assertf(cond bool, msg string) {}
func f(a, b int) int {
	if debugChecks {
		assertf(a >= 0 && b < 10, "bounds")
	}
	return a + b
}`
	fd, fn := buildFn(t, src, "f")
	au := useOf(t, fd, fn, "a", 1)
	bu := useOf(t, fd, fn, "b", 1)
	if au.Kind != Refine || bu.Kind != Refine {
		t.Fatalf("post-assert kinds = %v, %v, want Refine, Refine", au.Kind, bu.Kind)
	}
	if be, ok := au.Cond.(*ast.BinaryExpr); !ok || be.Op != token.GEQ {
		t.Errorf("a's refinement should be the a >= 0 conjunct, got %v", au.Cond)
	}
	if be, ok := bu.Cond.(*ast.BinaryExpr); !ok || be.Op != token.LSS {
		t.Errorf("b's refinement should be the b < 10 conjunct, got %v", bu.Cond)
	}
}

func TestOpAssignReadsOldVersion(t *testing.T) {
	src := `package p
func f(n int) int {
	s := 0
	s += n
	return s
}`
	fd, fn := buildFn(t, src, "f")
	ret := useOf(t, fd, fn, "s", 1)
	if ret.Op != token.ADD_ASSIGN {
		t.Fatalf("returned version has op %v, want +=", ret.Op)
	}
	if ret.X == nil || ret.X.Kind != Def {
		t.Error("op-assign must consume the prior version")
	}
	if ret.Expr == nil {
		t.Error("op-assign must record its operand expression")
	}
}
