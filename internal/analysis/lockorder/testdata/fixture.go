// Fixture for the lockorder analyzer: acquisition-order cycles,
// channel sends under a lock, and sink calls under a lock.
package fixture

import "sync"

// Sink mimics the caller-supplied emission interfaces (mine.Sink,
// obs.Sink): code of unknown blocking behavior.
type Sink interface {
	Emit(items []uint32, support uint64) error
	Record(name string)
}

type server struct {
	mu    sync.Mutex
	aux   sync.Mutex
	state int
	ch    chan int
	sink  Sink
}

// consistentOrder always takes mu before aux.
func (s *server) consistentOrder() {
	s.mu.Lock()
	s.aux.Lock()
	s.state++
	s.aux.Unlock()
	s.mu.Unlock()
}

// consistentOrderElsewhere repeats the same order: no cycle.
func (s *server) consistentOrderElsewhere() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.aux.Lock()
	defer s.aux.Unlock()
	s.state--
}

type registry struct {
	mu  sync.Mutex
	aux sync.Mutex
	n   int
}

// abOrder and baOrder disagree on the order of the registry locks:
// run concurrently they deadlock, each holding what the other wants.
func (r *registry) abOrder() {
	r.mu.Lock()
	r.aux.Lock() // want `r.aux acquired while holding r.mu, but elsewhere they are acquired in the opposite order`
	r.n++
	r.aux.Unlock()
	r.mu.Unlock()
}

func (r *registry) baOrder() {
	r.aux.Lock()
	r.mu.Lock() // want `r.mu acquired while holding r.aux, but elsewhere they are acquired in the opposite order`
	r.n--
	r.mu.Unlock()
	r.aux.Unlock()
}

// sendUnderLock blocks every other user of mu on a slow receiver.
func (s *server) sendUnderLock(v int) {
	s.mu.Lock()
	s.ch <- v // want `channel send while holding s.mu`
	s.mu.Unlock()
}

// sendAfterUnlock snapshots under the lock and sends outside it.
func (s *server) sendAfterUnlock() {
	s.mu.Lock()
	v := s.state
	s.mu.Unlock()
	s.ch <- v
}

// sendUnderDeferredUnlock is still a send under the lock: the deferred
// unlock runs only at return.
func (s *server) sendUnderDeferredUnlock(v int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.ch <- v // want `channel send while holding s.mu`
}

// emitUnderLock hands control to caller-supplied sink code while
// holding the lock.
func (s *server) emitUnderLock(items []uint32) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.sink.Emit(items, 1) // want `Sink.Emit called while holding s.mu`
}

// recordAfterUnlock is the obs.Recorder discipline: snapshot under the
// lock, emit after releasing it.
func (s *server) recordAfterUnlock() {
	s.mu.Lock()
	v := s.state
	s.mu.Unlock()
	_ = v
	s.sink.Record("state")
}

// recordUnderLock violates it.
func (s *server) recordUnderLock() {
	s.mu.Lock()
	s.sink.Record("state") // want `Sink.Record called while holding s.mu`
	s.mu.Unlock()
}

// selfDeadlock re-locks a mutex it already holds; sync.Mutex is not
// reentrant.
func (s *server) selfDeadlock() {
	s.mu.Lock()
	s.mu.Lock() // want `s.mu locked again while already held on this path: self-deadlock`
	s.mu.Unlock()
	s.mu.Unlock()
}

// unlockedOnBothArms releases on every path before the send, which the
// must-held analysis proves.
func (s *server) unlockedOnBothArms(fast bool, v int) {
	s.mu.Lock()
	if fast {
		s.mu.Unlock()
	} else {
		s.state++
		s.mu.Unlock()
	}
	s.ch <- v
}

// rwReadHeld applies the same rules to RWMutex read locks: a send
// under RLock still stalls writers queued behind the reader.
type rwCache struct {
	mu sync.RWMutex
	ch chan int
	n  int
}

func (c *rwCache) readAndSend() {
	c.mu.RLock()
	c.ch <- c.n // want `channel send while holding c.mu`
	c.mu.RUnlock()
}

func (c *rwCache) readThenSend() {
	c.mu.RLock()
	n := c.n
	c.mu.RUnlock()
	c.ch <- n
}

// goroutineStartsFresh: a spawned goroutine has its own empty held
// set, so its send is not "under" the spawner's lock; the analyzer
// checks the literal's body independently.
func (s *server) goroutineStartsFresh(v int) {
	s.mu.Lock()
	go func() {
		s.ch <- v
	}()
	s.mu.Unlock()
}

// flush hides the emission inside a helper; its summary carries
// EmitsSink.
func (s *server) flush(items []uint32) error {
	return s.sink.Emit(items, 1)
}

// flushUnderLock reaches the sink with mu held, two calls deep — only
// the summary sees it.
func (s *server) flushUnderLock(items []uint32) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.flush(items) // want `call to flush, which emits to a caller-supplied sink \(per its summary\), while holding s\.mu`
}

// flushAfterUnlock releases before delegating to the emitting helper.
func (s *server) flushAfterUnlock(items []uint32) error {
	s.mu.Lock()
	s.state++
	s.mu.Unlock()
	return s.flush(items)
}
