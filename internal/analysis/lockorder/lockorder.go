// Package lockorder guards the locking discipline of the synchronized
// layers (internal/obs, internal/core's parallel driver). It solves a
// must-held-set dataflow problem over each function's CFG and checks
// three rules:
//
//  1. Lock order is globally consistent: if any path acquires lock B
//     while holding lock A, no path may acquire A while holding B
//     (or complete any longer cycle). Inconsistent order is the
//     classic two-goroutine deadlock.
//  2. No channel send happens while a lock is held: a slow (or dead)
//     receiver would stall every other user of the lock.
//  3. No sink emission (an interface method named Emit or Record)
//     happens while a lock is held: sinks are caller-supplied code
//     that may block or take locks of its own — obs.Recorder
//     deliberately snapshots under its mutex and calls Record after
//     unlocking, and this rule keeps it that way.
//
// Locks are identified by their declaration: the mutex field of a
// struct type stands for that field in every instance, which is the
// granularity at which an ordering policy is statable. Deferred
// unlocks do not release for the purposes of the held set (they run at
// return), so `mu.Lock(); defer mu.Unlock()` holds to the end of the
// function — which is precisely when sends and emissions under it are
// dangerous.
package lockorder

import (
	"go/ast"
	"go/token"
	"go/types"

	"cfpgrowth/internal/analysis"
	"cfpgrowth/internal/analysis/cfg"
	"cfpgrowth/internal/analysis/dataflow"
	"cfpgrowth/internal/analysis/summary"
)

// Analyzer is the lockorder rule.
var Analyzer = &analysis.Analyzer{
	Name: "lockorder",
	Doc: `requires a globally consistent mutex acquisition order and no
channel send or sink emission — a direct interface Emit/Record call,
or a call to a helper whose summary says it emits — while a mutex is
held`,
	Requires:  []*analysis.Analyzer{summary.Analyzer},
	FactTypes: []analysis.Fact{new(summary.Effects)},
	Run:       run,
}

// heldSet maps each held lock to the position where it was acquired.
type heldSet map[types.Object]token.Pos

type lockProblem struct {
	pass *analysis.Pass
}

func (p *lockProblem) Entry() heldSet { return heldSet{} }

func (p *lockProblem) Clone(s heldSet) heldSet {
	out := make(heldSet, len(s))
	for k, v := range s {
		out[k] = v
	}
	return out
}

func (p *lockProblem) Equal(a, b heldSet) bool {
	if len(a) != len(b) {
		return false
	}
	for k := range a {
		if _, ok := b[k]; !ok {
			return false
		}
	}
	return true
}

// Join intersects: a lock counts as held only when held on all paths,
// so every report is about a guaranteed-held lock, never a maybe.
func (p *lockProblem) Join(a, b heldSet) heldSet {
	out := make(heldSet)
	for k, v := range a {
		if _, ok := b[k]; ok {
			out[k] = v
		}
	}
	return out
}

func (p *lockProblem) Refine(s heldSet, cond ast.Expr, taken bool) heldSet { return s }

func (p *lockProblem) Transfer(s heldSet, n ast.Node) heldSet {
	if _, ok := n.(*ast.DeferStmt); ok {
		return s // deferred unlocks release at return, after everything we check
	}
	if _, ok := n.(*ast.GoStmt); ok {
		return s // runs on another goroutine with its own (empty) held set
	}
	dataflow.Inspect(n, func(m ast.Node) bool {
		call, ok := m.(*ast.CallExpr)
		if !ok {
			return true
		}
		if obj, _, acquire, ok := p.lockCall(call); ok {
			if acquire {
				s[obj] = call.Pos()
			} else {
				delete(s, obj)
			}
		}
		return true
	})
	return s
}

// lockCall recognizes m.Lock/RLock/Unlock/RUnlock on a sync.Mutex or
// sync.RWMutex reachable through a resolvable name, returning the
// lock's identity object and a printable name.
func (p *lockProblem) lockCall(call *ast.CallExpr) (types.Object, string, bool, bool) {
	fn := analysis.Callee(p.pass.TypesInfo, call)
	if fn == nil {
		return nil, "", false, false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil || !isMutexType(sig.Recv().Type()) {
		return nil, "", false, false
	}
	var acquire bool
	switch fn.Name() {
	case "Lock", "RLock":
		acquire = true
	case "Unlock", "RUnlock":
	default:
		return nil, "", false, false // TryLock etc.: out of scope
	}
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return nil, "", false, false
	}
	obj := analysis.Uses(p.pass.TypesInfo, sel.X)
	if obj == nil {
		return nil, "", false, false
	}
	return obj, types.ExprString(sel.X), acquire, true
}

func isMutexType(t types.Type) bool {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "sync" &&
		(obj.Name() == "Mutex" || obj.Name() == "RWMutex")
}

// orderEdge records "to was acquired while from was held".
type orderEdge struct {
	from, to types.Object
	pos      token.Pos
}

type runState struct {
	prob   *lockProblem
	lookup summary.Lookup
	edges  []orderEdge
	adj    map[types.Object]map[types.Object]bool
	names  map[types.Object]string
}

func run(pass *analysis.Pass) error {
	st := &runState{
		prob:   &lockProblem{pass: pass},
		lookup: summary.Lookuper(pass),
		adj:    map[types.Object]map[types.Object]bool{},
		names:  map[types.Object]string{},
	}
	for _, fd := range pass.FuncDecls() {
		st.checkBody(pass, fd.Body)
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			if lit, ok := n.(*ast.FuncLit); ok {
				st.checkBody(pass, lit.Body)
			}
			return true
		})
	}
	st.reportCycles(pass)
	return nil
}

// checkBody solves the held-set problem for one function body and
// sweeps it for violations and order edges.
func (st *runState) checkBody(pass *analysis.Pass, body *ast.BlockStmt) {
	g := cfg.New(body)
	res := dataflow.Forward[heldSet](g, st.prob)
	res.Iterate(g, st.prob, func(n ast.Node, before heldSet) {
		st.visit(pass, n, before)
	})
}

func (st *runState) visit(pass *analysis.Pass, n ast.Node, before heldSet) {
	switch n.(type) {
	case *ast.DeferStmt, *ast.GoStmt:
		return // mirrors Transfer: neither runs here
	}
	// Track the held set as we scan within the node, so multi-call
	// expressions like mu.Lock() inside one statement stay precise.
	s := st.prob.Clone(before)
	dataflow.Inspect(n, func(m ast.Node) bool {
		switch m := m.(type) {
		case *ast.SendStmt:
			for obj := range s {
				pass.Reportf(m.Arrow,
					"channel send while holding %s: a slow receiver stalls every other user of the lock",
					st.names[obj])
			}
		case *ast.CallExpr:
			if obj, name, acquire, ok := st.prob.lockCall(m); ok {
				if _, taken := st.names[obj]; !taken {
					st.names[obj] = name
				}
				if acquire {
					if _, held := s[obj]; held {
						pass.Reportf(m.Pos(),
							"%s locked again while already held on this path: self-deadlock", name)
					}
					for held := range s {
						if held != obj { // self-deadlock already reported; not an order edge
							st.addEdge(held, obj, m.Pos())
						}
					}
					s[obj] = m.Pos()
				} else {
					delete(s, obj)
				}
				return true
			}
			if fn := sinkMethod(pass, m); fn != "" {
				for obj := range s {
					pass.Reportf(m.Pos(),
						"%s called while holding %s: the sink may block or take locks of its own; release %s before emitting",
						fn, st.names[obj], st.names[obj])
				}
				return true
			}
			// A helper that emits somewhere below it (per its summary) is
			// as dangerous under a lock as the Emit itself: the
			// caller-supplied sink it reaches may block with our mutex
			// held.
			if len(s) > 0 {
				if fn := analysis.Callee(pass.TypesInfo, m); fn != nil {
					if eff := st.lookup(fn); eff != nil && eff.EmitsSink {
						for obj := range s {
							pass.Reportf(m.Pos(),
								"call to %s, which emits to a caller-supplied sink (per its summary), while holding %s; the sink may block — release %s before calling",
								fn.Name(), st.names[obj], st.names[obj])
						}
					}
				}
			}
		}
		return true
	})
}

// sinkMethod reports calls of interface methods named Emit or Record —
// caller-supplied sink code whose blocking behavior is unknown.
func sinkMethod(pass *analysis.Pass, call *ast.CallExpr) string {
	fn := analysis.Callee(pass.TypesInfo, call)
	if fn == nil || (fn.Name() != "Emit" && fn.Name() != "Record") {
		return ""
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil || !types.IsInterface(sig.Recv().Type()) {
		return ""
	}
	return types.TypeString(sig.Recv().Type(), types.RelativeTo(pass.Pkg)) + "." + fn.Name()
}

func (st *runState) addEdge(from, to types.Object, pos token.Pos) {
	if st.adj[from] == nil {
		st.adj[from] = map[types.Object]bool{}
	}
	if !st.adj[from][to] || !hasRecordedEdge(st.edges, from, to, pos) {
		st.edges = append(st.edges, orderEdge{from: from, to: to, pos: pos})
	}
	st.adj[from][to] = true
}

// hasRecordedEdge dedups identical (from, to, pos) triples, which the
// fixpoint sweep would otherwise record once per reaching path.
func hasRecordedEdge(edges []orderEdge, from, to types.Object, pos token.Pos) bool {
	for _, e := range edges {
		if e.from == from && e.to == to && e.pos == pos {
			return true
		}
	}
	return false
}

// reportCycles flags every acquisition edge that participates in a
// cycle of the global order graph.
func (st *runState) reportCycles(pass *analysis.Pass) {
	reported := map[token.Pos]bool{}
	for _, e := range st.edges {
		if reported[e.pos] || !st.reaches(e.to, e.from) {
			continue
		}
		reported[e.pos] = true
		if st.adj[e.to][e.from] {
			pass.Reportf(e.pos,
				"%s acquired while holding %s, but elsewhere they are acquired in the opposite order: deadlock risk",
				st.names[e.to], st.names[e.from])
			continue
		}
		pass.Reportf(e.pos,
			"%s acquired while holding %s completes a cycle in the lock order: deadlock risk",
			st.names[e.to], st.names[e.from])
	}
}

// reaches reports whether the order graph has a path from a to b.
func (st *runState) reaches(a, b types.Object) bool {
	seen := map[types.Object]bool{}
	var dfs func(types.Object) bool
	dfs = func(n types.Object) bool {
		if n == b {
			return true
		}
		if seen[n] {
			return false
		}
		seen[n] = true
		for m := range st.adj[n] {
			if dfs(m) {
				return true
			}
		}
		return false
	}
	return dfs(a)
}
