// Package poolreturn guards the recycle discipline of pooled scratch
// buffers — the per-grower Decode free list of internal/core/decode.go
// and any sync.Pool — on every path, error and cancel exits included.
// A pooled value that misses its release on one path is not a crash:
// it silently degrades the pool's hit rate and, for the Decode free
// list, leaks the modeled bytes of a whole flat decoding until the
// grower dies, which is exactly the drift the paper's memory budget
// cannot absorb on deep recursions.
//
// The analysis is a forward may-dataflow per function scope. A token
// opens when a value is obtained from a pool:
//
//   - v := pool.Get() (or through a type assertion),
//   - v := m.acquireFoo(...) — the repo's acquire/release naming pair,
//   - v := helper(...) where helper's summary says GetsPooled.
//
// A token closes when the value goes back:
//
//   - pool.Put(v), m.releaseFoo(v), or a call whose summary
//     (PutsParams) returns that parameter slot to a pool,
//   - deferred forms of the same, applied per return path.
//
// Ownership transfers close a token without a release: returning the
// value, storing it into a field, element, map or channel, capturing
// it in a function literal, or passing it to a callee whose pointsto
// Escapes fact says it retains the argument (the literal, structure,
// or callee now owns the release). Captures and callee retention come
// from the points-to layer — LitCaptures resolves semantic captures
// (a variable redeclared inside the literal is not a capture, so the
// obligation stays put), and Escapes facts name the retaining slots —
// rather than from lexical identifier scans. Whatever is still open
// when a return path is reached is reported at its acquisition site.
package poolreturn

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"cfpgrowth/internal/analysis"
	"cfpgrowth/internal/analysis/cfg"
	"cfpgrowth/internal/analysis/dataflow"
	"cfpgrowth/internal/analysis/pointsto"
	"cfpgrowth/internal/analysis/summary"
)

// Analyzer is the poolreturn rule, scoped by the driver to the mining
// packages that recycle decode scratch (internal/core, internal/pfp,
// internal/fptree, internal/algo).
var Analyzer = &analysis.Analyzer{
	Name: "poolreturn",
	Doc: `requires every pooled value (sync.Pool Get, acquire*/release*
pairs like the per-grower Decode free list, and helpers whose summary
hands out pooled values) to be returned to its pool on every return
path, error and cancel exits included, unless ownership is
transferred by returning or storing the value`,
	Requires:  []*analysis.Analyzer{summary.Analyzer, pointsto.Analyzer},
	FactTypes: []analysis.Fact{new(summary.Effects), new(pointsto.Points), new(pointsto.Escapes)},
	Run:       run,
}

// tokenKey identifies one open pooled value: the variable holding it
// and the acquisition site.
type tokenKey struct {
	obj types.Object
	pos token.Pos
}

type state struct {
	// open holds the pooled values not yet returned on this path
	// (may-set).
	open map[tokenKey]bool
	// held holds the same tokens on every path (must-set), for message
	// precision.
	held map[tokenKey]bool
	// defObjs holds variables released by a deferred call registered on
	// this path.
	defObjs map[types.Object]bool
}

type problem struct {
	pass   *analysis.Pass
	lookup summary.Lookup
	// pts is the package's points-to result: semantic literal captures
	// and callee Escapes facts both come from it.
	pts *pointsto.Result
}

func (p problem) Entry() state {
	return state{open: map[tokenKey]bool{}, held: map[tokenKey]bool{}, defObjs: map[types.Object]bool{}}
}

func (p problem) Clone(s state) state {
	c := state{
		open:    make(map[tokenKey]bool, len(s.open)),
		held:    make(map[tokenKey]bool, len(s.held)),
		defObjs: make(map[types.Object]bool, len(s.defObjs)),
	}
	for k := range s.open {
		c.open[k] = true
	}
	for k := range s.held {
		c.held[k] = true
	}
	for k := range s.defObjs {
		c.defObjs[k] = true
	}
	return c
}

func (p problem) Join(a, b state) state {
	j := p.Clone(a)
	for k := range b.open {
		j.open[k] = true
	}
	for k := range j.held {
		if !b.held[k] {
			delete(j.held, k)
		}
	}
	for k := range j.defObjs {
		if !b.defObjs[k] {
			delete(j.defObjs, k)
		}
	}
	return j
}

func (p problem) Equal(a, b state) bool {
	if len(a.open) != len(b.open) || len(a.held) != len(b.held) || len(a.defObjs) != len(b.defObjs) {
		return false
	}
	for k := range a.open {
		if !b.open[k] {
			return false
		}
	}
	for k := range a.held {
		if !b.held[k] {
			return false
		}
	}
	for k := range a.defObjs {
		if !b.defObjs[k] {
			return false
		}
	}
	return true
}

func (p problem) Refine(s state, cond ast.Expr, taken bool) state { return s }

func (p problem) Transfer(s state, n ast.Node) state {
	info := p.pass.TypesInfo
	switch n := n.(type) {
	case *ast.AssignStmt:
		for _, rhs := range n.Rhs {
			p.scan(s, rhs)
		}
		for i, lhs := range n.Lhs {
			if i >= len(n.Rhs) {
				break
			}
			obj := identObj(info, lhs)
			if obj == nil {
				// A store into a field/element transfers ownership of any
				// token named on the RHS.
				p.dropNamed(s, n.Rhs[i])
				continue
			}
			if acq := p.acquireCall(n.Rhs[i]); acq != nil {
				s.open[tokenKey{obj, acq.Pos()}] = true
				s.held[tokenKey{obj, acq.Pos()}] = true
			} else {
				// Rebinding (including aliasing v2 := d): the variable no
				// longer holds the tracked value; an alias now owns it.
				drop(s, obj)
				p.dropNamed(s, n.Rhs[i])
			}
		}
	case *ast.DeferStmt:
		p.deferCall(s, n.Call)
	case *ast.ReturnStmt:
		for _, r := range n.Results {
			p.scan(s, r)
		}
		applyDefers(s)
		for _, r := range n.Results {
			p.dropNamed(s, r)
		}
	case *ast.SendStmt:
		p.scan(s, n.Chan)
		p.dropNamed(s, n.Value)
	default:
		p.scan(s, n)
	}
	return s
}

// scan applies release calls and literal-capture ownership transfers
// inside one expression tree.
func (p problem) scan(s state, n ast.Node) {
	info := p.pass.TypesInfo
	dataflow.Inspect(n, func(m ast.Node) bool {
		switch m := m.(type) {
		case *ast.CallExpr:
			if p.releaseCall(s, m) {
				return false
			}
			// Ordinary calls are NOT transfers: readers borrow pooled
			// values constantly. The exceptions are append (the slice now
			// stores the value) and callees whose Escapes fact says the
			// argument is retained past the call (the callee owns it).
			if id, ok := ast.Unparen(m.Fun).(*ast.Ident); ok {
				if b, ok := info.Uses[id].(*types.Builtin); ok && b.Name() == "append" {
					for _, a := range m.Args[1:] {
						p.dropNamed(s, a)
					}
					return false
				}
			}
			if fn := analysis.Callee(info, m); fn != nil {
				if mask := p.calleeLasting(fn); mask != 0 {
					for i, a := range summary.ArgExprs(m, fn) {
						if a != nil && i < 32 && mask&(1<<i) != 0 {
							p.dropNamed(s, a)
						}
					}
				}
			}
		case *ast.CompositeLit:
			// Storing the value into a literal transfers ownership to the
			// structure.
			for _, el := range m.Elts {
				if kv, ok := el.(*ast.KeyValueExpr); ok {
					p.dropNamed(s, kv.Value)
				} else {
					p.dropNamed(s, el)
				}
			}
		case *ast.FuncLit:
			// The literal captures the variable: it (or whoever runs it)
			// owns the release now. LitCaptures is semantic — a variable
			// redeclared inside the literal shadows the token holder and
			// transfers nothing.
			if p.pts != nil {
				for _, obj := range p.pts.LitCaptures(m) {
					drop(s, obj)
				}
			}
		}
		return true
	})
}

// acquireCall returns the pool-acquisition call of e, unwrapping a
// type assertion, or nil.
func (p problem) acquireCall(e ast.Expr) *ast.CallExpr {
	e = ast.Unparen(e)
	if ta, ok := e.(*ast.TypeAssertExpr); ok {
		e = ast.Unparen(ta.X)
	}
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return nil
	}
	fn := analysis.Callee(p.pass.TypesInfo, call)
	if fn == nil {
		return nil
	}
	if isPoolMethod(fn, "Get") || strings.HasPrefix(strings.ToLower(fn.Name()), "acquire") {
		return call
	}
	if eff := p.lookup(fn); eff != nil && eff.GetsPooled {
		return call
	}
	return nil
}

// releaseCall pops the tokens a call returns to a pool; it reports
// whether the call was release-shaped.
func (p problem) releaseCall(s state, call *ast.CallExpr) bool {
	info := p.pass.TypesInfo
	fn := analysis.Callee(info, call)
	if fn == nil {
		return false
	}
	if isPoolMethod(fn, "Put") || strings.HasPrefix(strings.ToLower(fn.Name()), "release") {
		for _, a := range call.Args {
			if obj := identObj(info, a); obj != nil {
				drop(s, obj)
			}
		}
		return true
	}
	if eff := p.lookup(fn); eff != nil && eff.PutsParams != 0 {
		for i, a := range summary.ArgExprs(call, fn) {
			if a == nil || eff.PutsParams&(1<<i) == 0 {
				continue
			}
			if obj := identObj(info, a); obj != nil {
				drop(s, obj)
			}
		}
		return true
	}
	return false
}

// calleeLasting returns the parameter slots the callee retains for
// certain past the call (its pointsto Escapes fact's Lasting mask):
// passing a token into such a slot transfers ownership.
func (p problem) calleeLasting(fn *types.Func) uint32 {
	var e pointsto.Escapes
	if p.pass.ImportObjectFact(fn, &e) {
		return e.Lasting
	}
	return 0
}

// deferCall registers deferred releases; deferred closures are scanned
// for the same shapes.
func (p problem) deferCall(s state, call *ast.CallExpr) {
	if lit, ok := ast.Unparen(call.Fun).(*ast.FuncLit); ok {
		ast.Inspect(lit.Body, func(n ast.Node) bool {
			if c, ok := n.(*ast.CallExpr); ok {
				p.deferCall(s, c)
			}
			return true
		})
		return
	}
	info := p.pass.TypesInfo
	fn := analysis.Callee(info, call)
	if fn == nil {
		return
	}
	release := isPoolMethod(fn, "Put") || strings.HasPrefix(strings.ToLower(fn.Name()), "release")
	var eff *summary.Effects
	if !release {
		eff = p.lookup(fn)
		if eff == nil || eff.PutsParams == 0 {
			return
		}
	}
	if release {
		for _, a := range call.Args {
			if obj := identObj(info, a); obj != nil {
				s.defObjs[obj] = true
			}
		}
		return
	}
	for i, a := range summary.ArgExprs(call, fn) {
		if a == nil || eff.PutsParams&(1<<i) == 0 {
			continue
		}
		if obj := identObj(info, a); obj != nil {
			s.defObjs[obj] = true
		}
	}
}

// dropNamed closes the tokens of every variable named as a bare
// identifier in e (ownership transfer).
func (p problem) dropNamed(s state, e ast.Expr) {
	if obj := identObj(p.pass.TypesInfo, e); obj != nil {
		drop(s, obj)
	}
}

func drop(s state, obj types.Object) {
	for k := range s.open {
		if k.obj == obj {
			delete(s.open, k)
			delete(s.held, k)
		}
	}
}

func applyDefers(s state) {
	for k := range s.open {
		if s.defObjs[k.obj] {
			delete(s.open, k)
			delete(s.held, k)
		}
	}
}

func run(pass *analysis.Pass) error {
	lookup := summary.Lookuper(pass)
	pts := pointsto.ResultOf(pass)
	for _, fd := range pass.FuncDecls() {
		for _, body := range scopes(fd.Body) {
			check(pass, body, lookup, pts)
		}
	}
	return nil
}

func scopes(root *ast.BlockStmt) []*ast.BlockStmt {
	out := []*ast.BlockStmt{root}
	ast.Inspect(root, func(n ast.Node) bool {
		if fl, ok := n.(*ast.FuncLit); ok && fl.Body != nil {
			out = append(out, fl.Body)
		}
		return true
	})
	return out
}

func check(pass *analysis.Pass, body *ast.BlockStmt, lookup summary.Lookup, pts *pointsto.Result) {
	prob := problem{pass: pass, lookup: lookup, pts: pts}
	g := cfg.New(body)
	res := dataflow.Forward[state](g, prob)
	if !res.ExitReached {
		return
	}
	exit := prob.Clone(res.Exit)
	applyDefers(exit)
	reported := map[token.Pos]bool{}
	for k := range exit.open {
		if reported[k.pos] {
			continue
		}
		reported[k.pos] = true
		if exit.held[k] {
			pass.Reportf(k.pos, "pooled value %s obtained here is never returned to its pool in this function; release it or transfer ownership", k.obj.Name())
		} else {
			pass.Reportf(k.pos, "pooled value %s obtained here is not returned to its pool on every return path (an early return or error exit skips the release); release it on each path or defer the release", k.obj.Name())
		}
	}
}

func identObj(info *types.Info, e ast.Expr) types.Object {
	if e == nil {
		return nil
	}
	id, ok := ast.Unparen(e).(*ast.Ident)
	if !ok || id.Name == "_" {
		return nil
	}
	if obj := info.Uses[id]; obj != nil {
		return obj
	}
	return info.Defs[id]
}

func isPoolMethod(fn *types.Func, name string) bool {
	if fn == nil || fn.Name() != name {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	t := sig.Recv().Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	return ok && named.Obj().Name() == "Pool" &&
		named.Obj().Pkg() != nil && named.Obj().Pkg().Path() == "sync"
}
