// Fixture for the poolreturn analyzer: pooled values must go back to
// their pool on every path unless ownership is transferred.
package fixture

import "sync"

type buf struct{ b []byte }

var bufPool = sync.Pool{New: func() any { return new(buf) }}

type mgr struct {
	free *buf
	keep *buf
}

func (m *mgr) acquireBuf() *buf {
	if m.free != nil {
		b := m.free
		m.free = nil
		return b
	}
	return new(buf)
}

func (m *mgr) releaseBuf(b *buf) { m.free = b }

// grab hands out a pooled value: callers inherit the obligation via
// the GetsPooled summary.
func grab() *buf {
	v := bufPool.Get().(*buf)
	return v
}

// stash returns its parameter to the pool: callers discharge through
// the PutsParams summary.
func stash(v *buf) { bufPool.Put(v) }

func leakOnErr(fail bool) error {
	v := bufPool.Get().(*buf) // want `^pooled value v obtained here is not returned to its pool on every return path \(an early return or error exit skips the release\); release it on each path or defer the release$`
	if fail {
		return errFail
	}
	bufPool.Put(v)
	return nil
}

func neverReleased() {
	v := bufPool.Get().(*buf) // want `^pooled value v obtained here is never returned to its pool in this function; release it or transfer ownership$`
	sink(v.b)
}

func balancedDefer(fail bool) error {
	v := bufPool.Get().(*buf)
	defer bufPool.Put(v)
	if fail {
		return errFail
	}
	sink(v.b)
	return nil
}

func balancedExplicit(fail bool) error {
	v := bufPool.Get().(*buf)
	if fail {
		bufPool.Put(v)
		return errFail
	}
	bufPool.Put(v)
	return nil
}

func acquireLeak(m *mgr, fail bool) error {
	b := m.acquireBuf() // want `^pooled value b obtained here is not returned to its pool on every return path \(an early return or error exit skips the release\); release it on each path or defer the release$`
	if fail {
		return errFail
	}
	m.releaseBuf(b)
	return nil
}

func acquireDefer(m *mgr, fail bool) error {
	b := m.acquireBuf()
	defer m.releaseBuf(b)
	if fail {
		return errFail
	}
	sink(b.b)
	return nil
}

// crossLeak leaks a value obtained through grab: only the GetsPooled
// summary says the call hands out a pooled value.
func crossLeak(fail bool) error {
	v := grab() // want `^pooled value v obtained here is not returned to its pool on every return path \(an early return or error exit skips the release\); release it on each path or defer the release$`
	if fail {
		return errFail
	}
	bufPool.Put(v)
	return nil
}

// crossBalanced discharges through stash's PutsParams summary.
func crossBalanced(fail bool) error {
	v := grab()
	if fail {
		stash(v)
		return errFail
	}
	stash(v)
	return nil
}

// crossDefer discharges through a deferred summary-mediated release.
func crossDefer(fail bool) error {
	v := grab()
	defer stash(v)
	if fail {
		return errFail
	}
	return nil
}

// returned transfers ownership out: the caller owns the release.
func returned() *buf {
	v := bufPool.Get().(*buf)
	return v
}

// stored transfers ownership into the structure.
func stored(m *mgr) {
	v := bufPool.Get().(*buf)
	m.keep = v
}

// inLiteral transfers ownership to the closure that captures it.
func inLiteral() func() {
	v := bufPool.Get().(*buf)
	return func() { bufPool.Put(v) }
}

// deferredClosure releases inside a deferred literal.
func deferredClosure(fail bool) error {
	v := bufPool.Get().(*buf)
	defer func() { bufPool.Put(v) }()
	if fail {
		return errFail
	}
	return nil
}

// shadowLeak names v inside a literal, but the inner v is a
// redeclaration: nothing is captured (pointsto resolves captures
// semantically), ownership never moves, and the pooled value leaks. A
// lexical identifier scan would have silently closed the token here.
func shadowLeak() {
	v := bufPool.Get().(*buf) // want `^pooled value v obtained here is never returned to its pool in this function; release it or transfer ownership$`
	f := func() {
		v := new(buf)
		sink(v.b)
	}
	f()
	sink(v.b)
}

var registry *buf

// adopt retains its argument lastingly (pointsto Escapes fact).
func adopt(v *buf) { registry = v }

// handedOff transfers ownership to a retaining callee: adopt's Escapes
// fact says slot 0 outlives the call, so the release is adopt's
// problem (or whoever drains the registry).
func handedOff() {
	v := bufPool.Get().(*buf)
	adopt(v)
}

var errFail = sentinel("fail")

type sentinel string

func (s sentinel) Error() string { return string(s) }

func sink([]byte) {}
