package poolreturn_test

import (
	"testing"

	"cfpgrowth/internal/analysis"
	"cfpgrowth/internal/analysis/poolreturn"
)

func TestPool(t *testing.T) {
	analysis.RunFixture(t, poolreturn.Analyzer, "testdata/pool")
}
