package aliasburden_test

import (
	"testing"

	"cfpgrowth/internal/analysis"
	"cfpgrowth/internal/analysis/aliasburden"
)

func TestAliasBurden(t *testing.T) {
	analysis.RunFixture(t, aliasburden.Analyzer, "testdata/alias")
}
