// Package aliasburden keeps the hot path free of parameter aliasing:
// a //cfplint:hot function must not be handed two arguments that may
// point at the same mutable object when it writes through either one.
//
// The mine/serve inner loops are written as if their parameters were
// noalias — a shard's output buffer is appended to while the input
// triple slice is scanned, counts are bumped while starts are read.
// If a caller ever passes overlapping memory into two such slots, the
// code is simply wrong (a write through one parameter invalidates what
// was just read through the other), and the compiler's bounds-check
// and load elimination give up in exactly the loops where it matters.
// None of the existing layers can see this: summary knows a function
// writes through slot 0, pointsto knows two expressions share an
// object — only combining the two proves (or refutes) the noalias
// assumption at every hot call site.
//
// The check is caller-side: every call in the package whose callee is
// declared here with the //cfplint:hot doc marker (allochot's exact
// convention) is examined; for each argument pair where the callee's
// summary says it writes through at least one of the two slots, the
// pair's points-to sets must not share a mutable object. Objects whose
// region is exactly Frozen are exempt — frozen memory cannot be
// written (frozenro enforces that separately), so sharing it between
// read slots is benign. Hot callees in other packages are skipped:
// the marker is a doc comment, invisible in export data, and the
// repo's hot functions are called from their own package's
// orchestrators.
package aliasburden

import (
	"go/ast"
	"go/types"

	"cfpgrowth/internal/analysis"
	"cfpgrowth/internal/analysis/pointsto"
	"cfpgrowth/internal/analysis/summary"
)

const hotMarker = "//cfplint:hot"

// Analyzer flags aliasing argument pairs at hot call sites.
var Analyzer = &analysis.Analyzer{
	Name: "aliasburden",
	Doc: `flags call sites passing two arguments that may alias the same
mutable object into a //cfplint:hot function that writes through one of
them: hot inner loops assume noalias parameters, and an aliasing caller
breaks both correctness and the optimizer`,
	Requires:  []*analysis.Analyzer{pointsto.Analyzer, summary.Analyzer},
	FactTypes: []analysis.Fact{new(summary.Effects), new(pointsto.Points), new(pointsto.Escapes)},
	Run:       run,
}

func run(pass *analysis.Pass) error {
	r := pointsto.ResultOf(pass)
	if r == nil {
		return nil
	}

	// Hot callees declared in this package.
	hot := map[*types.Func]bool{}
	for _, fd := range pass.FuncDecls() {
		if fn, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func); ok && isHot(fd) {
			hot[fn] = true
		}
	}
	if len(hot) == 0 {
		return nil
	}

	lookup := summary.Lookuper(pass)
	for _, fd := range pass.FuncDecls() {
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := analysis.Callee(pass.TypesInfo, call)
			if fn == nil || !hot[fn] {
				return true
			}
			eff := lookup(fn)
			if eff == nil || eff.WritesParams == 0 {
				return true
			}
			args := summary.ArgExprs(call, fn)
			pts := make([][]*pointsto.Object, len(args))
			for i, a := range args {
				if a != nil {
					pts[i] = r.ExprPts(a)
				}
			}
			for i := 0; i < len(args); i++ {
				for j := i + 1; j < len(args); j++ {
					if i >= 32 || j >= 32 {
						continue
					}
					// Aliasing only burdens the callee when it writes
					// through at least one slot of the pair.
					if eff.WritesParams&(1<<i|1<<j) == 0 {
						continue
					}
					if o := sharedMutable(pts[i], pts[j]); o != nil {
						pass.Reportf(call.Pos(),
							"hot function %s may be handed aliasing arguments %d and %d (both can point to %s) and writes through the pair: hot paths assume noalias parameters",
							fn.Name(), i, j, o.Label)
						return true // one report per call site
					}
				}
			}
			return true
		})
	}
	return nil
}

// sharedMutable returns an object present in both points-to sets that
// is writable (not purely frozen), or nil.
func sharedMutable(a, b []*pointsto.Object) *pointsto.Object {
	if len(a) == 0 || len(b) == 0 {
		return nil
	}
	in := map[int]bool{}
	for _, o := range a {
		in[o.ID] = true
	}
	for _, o := range b {
		if in[o.ID] && o.Region != pointsto.Frozen {
			return o
		}
	}
	return nil
}

func isHot(fd *ast.FuncDecl) bool {
	if fd.Doc == nil {
		return false
	}
	for _, c := range fd.Doc.List {
		if c.Text == hotMarker {
			return true
		}
	}
	return false
}
