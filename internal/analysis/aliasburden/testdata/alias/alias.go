// Package alias exercises aliasburden: hot callees that write through
// a parameter flag callers passing may-aliasing argument pairs, while
// distinct arguments, read-only hot callees, and cold callees stay
// clean.
package alias

type rec struct {
	vals []int
	out  []int
}

// merge writes through dst while reading src: the canonical noalias
// assumption.
//
//cfplint:hot
func merge(dst, src *rec) {
	dst.vals = append(dst.vals, src.vals...)
}

// compare only reads both parameters: aliasing them is harmless.
//
//cfplint:hot
func compare(a, b *rec) int {
	return len(a.vals) - len(b.vals)
}

// coldMerge writes through dst but carries no hot marker: out of
// scope.
func coldMerge(dst, src *rec) {
	dst.vals = append(dst.vals, src.vals...)
}

func callAliased() {
	r := &rec{}
	merge(r, r) // want `hot function merge may be handed aliasing arguments 0 and 1`
}

func callViaCopy() {
	r := &rec{}
	s := r
	merge(r, s) // want `hot function merge may be handed aliasing arguments 0 and 1`
}

func callDistinct() {
	a, b := &rec{}, &rec{}
	merge(a, b)
}

func callReadOnly() {
	r := &rec{}
	_ = compare(r, r)
}

func callCold() {
	r := &rec{}
	coldMerge(r, r)
}
