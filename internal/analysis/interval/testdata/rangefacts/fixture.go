// Fixture for the rangefacts producer: the probe analyzer reports the
// published ResultRanges fact of every function that has one.
package fixture

func seven() int { return 7 } // want `results \[7, 7\]`

func pick(c bool) int { // want `results \[3, 9\]`
	if c {
		return 3
	}
	return 9
}

func clamped(x int) int { // want `results \[0, 255\]`
	if x < 0 {
		return 0
	}
	if x > 255 {
		return 255
	}
	return x
}

// viaCallee proves cross-function propagation inside one package:
// seven's fact is computed first (callees-first SCC order).
func viaCallee() int { // want `results \[8, 8\]`
	return seven() + 1
}

func pair() (int, int) { // want `results \[1, 1\] \[2, 2\]`
	return 1, 2
}

// usesPair proves the tuple-assignment result-slot lookup.
func usesPair() int { // want `results \[3, 3\]`
	a, b := pair()
	return a + b
}

func flag(c bool) (uint32, bool) { // want `results \[0, 15\] \[0, 1\]`
	if c {
		return 15, true
	}
	return 0, false
}

// opaque has an unbounded result: no fact, no diagnostic.
func opaque(x int) int { return x }

// rec is self-recursive: the recursive call resolves to the type
// range, so the join is uninformative and no fact is published.
func rec(n int) int {
	if n <= 0 {
		return 0
	}
	return rec(n - 1)
}
