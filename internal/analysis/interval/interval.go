// Package interval is the numeric layer of the analysis framework: an
// interval-domain abstract interpreter over the SSA form of
// internal/analysis/ssa, in the classic value-range-analysis tradition
// (widening to a fixpoint, then bounded narrowing). It answers the
// question the path- and effect-level layers cannot: what integer
// values can this expression take?
//
// The domain is a single interval [Lo, Hi] of int64 bounds with
// saturating arithmetic; math.MinInt64 and math.MaxInt64 double as
// -∞/+∞ sentinels, and unsigned values above MaxInt64 collapse to +∞
// (every bound the packed CFP-tree formats care about — 40-bit
// pointers, 32-bit ranks, 24-bit counts — sits far below 2^63).
// Arithmetic that can leave the value's type range abandons the
// computed interval for the full type range, which soundly models
// Go's wrapping semantics without tracking wrapped shapes.
//
// An interval may additionally carry one symbolic upper bound,
// "≤ len(S)+k", where S is a specific SSA version of a slice
// variable. Refining through `i < len(b)` records the bound against
// the version of b the comparison read, so a bounds certifier can
// later check that the indexing site still sees the same version —
// reassigning the slice invalidates the bound by construction.
//
// Transfer functions cover arithmetic, shifts, masks, bitwise ops,
// conversions, len/cap, the min/max builtins, range-loop bindings, and
// branch/assert refinements (via the ssa package's Refine values,
// including the debugchecks assertion convention). Calls resolve
// through the rangefacts layer: the Facts analyzer in this package
// publishes each function's provable result ranges bottom-up over the
// call graph, mirroring the summary layer's architecture, so a
// caller's intervals tighten through calls like ParentFields without
// inlining.
package interval

import (
	"fmt"
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"math"

	"cfpgrowth/internal/analysis"
	"cfpgrowth/internal/analysis/callgraph"
	"cfpgrowth/internal/analysis/cfg"
	"cfpgrowth/internal/analysis/ssa"
)

// Inf and NegInf are the saturating bound sentinels.
const (
	Inf    = math.MaxInt64
	NegInf = math.MinInt64
)

// A SymBound is a symbolic upper bound: value ≤ len(Len) + Off, valid
// for the specific SSA version Len of a slice/string variable.
type SymBound struct {
	Len *ssa.Value
	Off int64
}

// An Interval is one value range. The zero Interval is empty.
type Interval struct {
	Lo, Hi int64
	// Sym, when non-nil, additionally bounds the value from above by
	// len of a slice version (see SymBound).
	Sym *SymBound
}

// Top is the unconstrained interval.
func Top() Interval { return Interval{Lo: NegInf, Hi: Inf} }

// Empty reports whether the interval contains no values (an
// unreachable computation).
func (i Interval) Empty() bool { return i.Lo > i.Hi }

// In reports whether every value of the non-empty interval lies in
// [lo, hi].
func (i Interval) In(lo, hi int64) bool {
	return !i.Empty() && i.Lo >= lo && i.Hi <= hi
}

// Const returns the single value of a singleton interval.
func (i Interval) Const() (int64, bool) {
	if i.Lo == i.Hi && !i.Empty() {
		return i.Lo, true
	}
	return 0, false
}

func (i Interval) String() string {
	if i.Empty() {
		return "∅"
	}
	s := "["
	if i.Lo == NegInf {
		s += "-∞"
	} else {
		s += fmt.Sprint(i.Lo)
	}
	s += ", "
	if i.Hi == Inf {
		s += "+∞"
	} else {
		s += fmt.Sprint(i.Hi)
	}
	s += "]"
	if i.Sym != nil {
		s += fmt.Sprintf("∧≤len+%d", i.Sym.Off)
	}
	return s
}

func (i Interval) equal(o Interval) bool {
	if i.Empty() && o.Empty() {
		return true
	}
	if i.Lo != o.Lo || i.Hi != o.Hi {
		return false
	}
	if (i.Sym == nil) != (o.Sym == nil) {
		return false
	}
	return i.Sym == nil || (i.Sym.Len == o.Sym.Len && i.Sym.Off == o.Sym.Off)
}

// contains reports whether o ⊆ i, ignoring symbolic bounds.
func (i Interval) contains(o Interval) bool {
	return o.Empty() || (i.Lo <= o.Lo && o.Hi <= i.Hi)
}

// ---- saturating bound arithmetic -----------------------------------

// negSat negates a bound, swapping the sentinels.
func negSat(x int64) int64 {
	switch x {
	case Inf:
		return NegInf
	case NegInf:
		return Inf
	}
	return -x
}

// addLo adds two lower-bound corners; ambiguity resolves downward.
func addLo(a, b int64) int64 {
	if a == NegInf || b == NegInf {
		return NegInf
	}
	if a == Inf || b == Inf {
		return Inf
	}
	s := a + b
	if a > 0 && b > 0 && s <= 0 {
		return Inf
	}
	if a < 0 && b < 0 && s >= 0 {
		return NegInf
	}
	return s
}

// addHi adds two upper-bound corners; ambiguity resolves upward.
func addHi(a, b int64) int64 {
	if a == Inf || b == Inf {
		return Inf
	}
	if a == NegInf || b == NegInf {
		return NegInf
	}
	return addLo(a, b)
}

func mulSat(a, b int64) int64 {
	if a == 0 || b == 0 {
		return 0
	}
	neg := (a < 0) != (b < 0)
	if a == Inf || a == NegInf || b == Inf || b == NegInf {
		if neg {
			return NegInf
		}
		return Inf
	}
	p := a * b
	if p/b != a || (a == -1 && b == NegInf) || (b == -1 && a == NegInf) {
		if neg {
			return NegInf
		}
		return Inf
	}
	return p
}

// ---- interval operations -------------------------------------------

func add(a, b Interval) Interval {
	if a.Empty() || b.Empty() {
		return Interval{Lo: 1, Hi: 0}
	}
	out := Interval{Lo: addLo(a.Lo, b.Lo), Hi: addHi(a.Hi, b.Hi)}
	// x + c keeps x's symbolic bound shifted by the constant.
	if c, ok := b.Const(); ok && a.Sym != nil && c != Inf && c != NegInf {
		out.Sym = &SymBound{Len: a.Sym.Len, Off: addHi(a.Sym.Off, c)}
	} else if c, ok := a.Const(); ok && b.Sym != nil && c != Inf && c != NegInf {
		out.Sym = &SymBound{Len: b.Sym.Len, Off: addHi(b.Sym.Off, c)}
	}
	return out
}

func sub(a, b Interval) Interval {
	if a.Empty() || b.Empty() {
		return Interval{Lo: 1, Hi: 0}
	}
	out := Interval{Lo: addLo(a.Lo, negSat(b.Hi)), Hi: addHi(a.Hi, negSat(b.Lo))}
	if c, ok := b.Const(); ok && a.Sym != nil && c != Inf && c != NegInf {
		out.Sym = &SymBound{Len: a.Sym.Len, Off: addHi(a.Sym.Off, -c)}
	}
	return out
}

func mul(a, b Interval) Interval {
	if a.Empty() || b.Empty() {
		return Interval{Lo: 1, Hi: 0}
	}
	c1 := mulSat(a.Lo, b.Lo)
	c2 := mulSat(a.Lo, b.Hi)
	c3 := mulSat(a.Hi, b.Lo)
	c4 := mulSat(a.Hi, b.Hi)
	return Interval{Lo: min(min(c1, c2), min(c3, c4)), Hi: max(max(c1, c2), max(c3, c4))}
}

func quo(a, b Interval) Interval {
	if a.Empty() || b.Empty() {
		return Interval{Lo: 1, Hi: 0}
	}
	if b.Lo <= 0 && b.Hi >= 0 {
		return Top() // divisor may be 0: that path panics, range-wise ⊤
	}
	div := func(x, y int64) int64 {
		if y == Inf || y == NegInf {
			return 0 // finite / ±huge truncates to 0
		}
		if x == Inf || x == NegInf {
			if (x == Inf) == (y > 0) {
				return Inf
			}
			return NegInf
		}
		return x / y
	}
	c1 := div(a.Lo, b.Lo)
	c2 := div(a.Lo, b.Hi)
	c3 := div(a.Hi, b.Lo)
	c4 := div(a.Hi, b.Hi)
	return Interval{Lo: min(min(c1, c2), min(c3, c4)), Hi: max(max(c1, c2), max(c3, c4))}
}

func rem(a, b Interval) Interval {
	if a.Empty() || b.Empty() {
		return Interval{Lo: 1, Hi: 0}
	}
	if a.Lo >= 0 && b.Lo >= 1 {
		hi := addHi(b.Hi, -1)
		if a.Hi < hi {
			hi = a.Hi
		}
		return Interval{Lo: 0, Hi: hi}
	}
	return Top()
}

func shl(a, s Interval) Interval {
	if a.Empty() || s.Empty() {
		return Interval{Lo: 1, Hi: 0}
	}
	if a.Lo < 0 || s.Lo < 0 {
		return Top()
	}
	sh := func(v, n int64) int64 {
		if v == 0 {
			return 0
		}
		if v == Inf || n >= 63 || v > Inf>>uint(n) {
			return Inf
		}
		return v << uint(n)
	}
	return Interval{Lo: sh(a.Lo, s.Lo), Hi: sh(a.Hi, s.Hi)}
}

func shr(a, s Interval) Interval {
	if a.Empty() || s.Empty() {
		return Interval{Lo: 1, Hi: 0}
	}
	if a.Lo < 0 || s.Lo < 0 {
		return Top()
	}
	sLo, sHi := s.Lo, s.Hi
	if sHi > 63 {
		sHi = 63
	}
	lo := a.Lo
	if lo != Inf {
		lo >>= uint(sHi)
	}
	hi := a.Hi
	// An unsigned value above the +∞ sentinel may exceed MaxInt64>>n,
	// so the sentinel is sticky under right shift.
	if hi != Inf {
		hi >>= uint(sLo)
	}
	return Interval{Lo: lo, Hi: hi}
}

func and(a, b Interval) Interval {
	if a.Empty() || b.Empty() {
		return Interval{Lo: 1, Hi: 0}
	}
	// x & m with m ≥ 0 lands in [0, m] whatever x's sign.
	hi := int64(-1)
	if a.Lo >= 0 && (hi < 0 || a.Hi < hi) {
		hi = a.Hi
	}
	if b.Lo >= 0 && (hi < 0 || b.Hi < hi) {
		hi = b.Hi
	}
	if hi < 0 {
		return Top()
	}
	return Interval{Lo: 0, Hi: hi}
}

// maskAbove returns the smallest 2^k-1 ≥ x.
func maskAbove(x int64) int64 {
	if x == Inf {
		return Inf
	}
	m := int64(1)
	for m-1 < x {
		if m > Inf/2 {
			return Inf
		}
		m <<= 1
	}
	return m - 1
}

func bitOr(a, b Interval) Interval {
	if a.Empty() || b.Empty() {
		return Interval{Lo: 1, Hi: 0}
	}
	if a.Lo < 0 || b.Lo < 0 {
		return Top()
	}
	return Interval{Lo: max(a.Lo, b.Lo), Hi: maskAbove(max(a.Hi, b.Hi))}
}

func bitXor(a, b Interval) Interval {
	if a.Empty() || b.Empty() {
		return Interval{Lo: 1, Hi: 0}
	}
	if a.Lo < 0 || b.Lo < 0 {
		return Top()
	}
	return Interval{Lo: 0, Hi: maskAbove(max(a.Hi, b.Hi))}
}

func andNot(a, b Interval) Interval {
	if a.Empty() || b.Empty() {
		return Interval{Lo: 1, Hi: 0}
	}
	if a.Lo < 0 {
		return Top()
	}
	return Interval{Lo: 0, Hi: a.Hi}
}

// union is the lattice join.
func union(a, b Interval) Interval {
	if a.Empty() {
		return b
	}
	if b.Empty() {
		return a
	}
	out := Interval{Lo: min(a.Lo, b.Lo), Hi: max(a.Hi, b.Hi)}
	if a.Sym != nil && b.Sym != nil && a.Sym.Len == b.Sym.Len {
		out.Sym = &SymBound{Len: a.Sym.Len, Off: max(a.Sym.Off, b.Sym.Off)}
	}
	return out
}

// intersect is the lattice meet.
func intersect(a, b Interval) Interval {
	out := Interval{Lo: max(a.Lo, b.Lo), Hi: min(a.Hi, b.Hi)}
	switch {
	case a.Sym != nil && b.Sym != nil && a.Sym.Len == b.Sym.Len:
		out.Sym = &SymBound{Len: a.Sym.Len, Off: min(a.Sym.Off, b.Sym.Off)}
	case a.Sym != nil:
		out.Sym = a.Sym
	case b.Sym != nil:
		out.Sym = b.Sym
	}
	return out
}

// ---- type ranges ----------------------------------------------------

// TypeRange returns the representable range of an integer (or
// boolean) type, Top for anything else.
func TypeRange(t types.Type) Interval {
	bt, ok := t.Underlying().(*types.Basic)
	if !ok {
		return Top()
	}
	switch bt.Kind() {
	case types.Bool, types.UntypedBool:
		return Interval{Lo: 0, Hi: 1}
	case types.Int8:
		return Interval{Lo: math.MinInt8, Hi: math.MaxInt8}
	case types.Int16:
		return Interval{Lo: math.MinInt16, Hi: math.MaxInt16}
	case types.Int32:
		return Interval{Lo: math.MinInt32, Hi: math.MaxInt32}
	case types.Int64, types.Int, types.UntypedInt, types.UntypedRune:
		// int is 64-bit on every platform the miner targets; the 386
		// cross-build only checks compilation, not analysis claims.
		return Top()
	case types.Uint8:
		return Interval{Lo: 0, Hi: math.MaxUint8}
	case types.Uint16:
		return Interval{Lo: 0, Hi: math.MaxUint16}
	case types.Uint32:
		return Interval{Lo: 0, Hi: math.MaxUint32}
	case types.Uint64, types.Uint, types.Uintptr:
		return Interval{Lo: 0, Hi: Inf}
	}
	return Top()
}

// fit keeps the computed interval when it is representable in the
// type, and widens to the full type range otherwise — the sound model
// of Go's wrapping integer arithmetic.
func fit(iv Interval, t types.Type) Interval {
	if t == nil || iv.Empty() {
		return iv
	}
	tr := TypeRange(t)
	if tr.contains(iv) {
		return iv
	}
	return tr
}

// ---- the solver -----------------------------------------------------

// A Lookuper resolves a callee's proven result range, typically from
// rangefacts published by the Facts analyzer.
type Lookuper interface {
	ResultRange(fn *types.Func, result int) (Interval, bool)
}

// Result holds the fixpoint intervals of one function.
type Result struct {
	Fn   *ssa.Func
	info *types.Info
	look Lookuper
	val  map[*ssa.Value]Interval
}

const (
	widenAfter   = 3 // interval updates per value before widening
	narrowPasses = 2
)

// Analyze runs the interval fixpoint over fn. look may be nil.
func Analyze(fn *ssa.Func, info *types.Info, look Lookuper) *Result {
	r := &Result{Fn: fn, info: info, look: look, val: make(map[*ssa.Value]Interval, len(fn.Values))}
	inQ := make([]bool, len(fn.Values))
	queue := make([]*ssa.Value, 0, len(fn.Values))
	push := func(v *ssa.Value) {
		if !inQ[v.ID] {
			inQ[v.ID] = true
			queue = append(queue, v)
		}
	}
	for _, v := range fn.Values {
		// Optimistic init: unsolved values read as bottom so loop
		// cycles climb from below instead of self-justifying at ⊤.
		r.val[v] = Interval{Lo: 1, Hi: 0}
		push(v)
	}
	bumps := make(map[*ssa.Value]int)
	budget := 64*len(fn.Values) + 1024
	for len(queue) > 0 {
		if budget--; budget < 0 {
			// Runaway fixpoint: give up soundly on the whole function.
			for _, v := range fn.Values {
				r.val[v] = TypeRange(v.Var.Type())
			}
			return r
		}
		v := queue[0]
		queue = queue[1:]
		inQ[v.ID] = false
		nv := r.transfer(v)
		old, seen := r.val[v]
		// Join with the previous value: the ascending phase must be
		// monotone regardless of transfer quirks (wrapping fit, refines
		// whose inputs momentarily shrink), or chaotic iteration can
		// oscillate until the budget trips and the whole function decays
		// to type ranges. Narrowing below recovers the precision.
		if seen {
			nv = union(old, nv)
		}
		if seen && nv.equal(old) {
			continue
		}
		if seen {
			if bumps[v]++; bumps[v] > widenAfter {
				nv = widen(old, nv, TypeRange(v.Var.Type()))
			}
		}
		r.val[v] = nv
		for _, u := range fn.Uses[v] {
			push(u)
		}
	}
	// Bounded narrowing: recompute descending from the widened
	// fixpoint; keep a recomputation only when it shrinks the value.
	for pass := 0; pass < narrowPasses; pass++ {
		for _, v := range fn.Values {
			nv := r.transfer(v)
			if r.val[v].contains(nv) {
				r.val[v] = nv
			}
		}
	}
	return r
}

// widen jumps a growing bound to its type extreme so loops converge.
func widen(old, nv Interval, tr Interval) Interval {
	if old.Empty() {
		return nv
	}
	out := nv
	if nv.Lo < old.Lo {
		out.Lo = tr.Lo
	}
	if nv.Hi > old.Hi {
		out.Hi = tr.Hi
	}
	return out
}

// Value returns the interval of one SSA value.
func (r *Result) Value(v *ssa.Value) Interval {
	if v == nil {
		return Top()
	}
	iv, ok := r.val[v]
	if !ok {
		return TypeRange(v.Var.Type())
	}
	return iv
}

// Eval evaluates an expression at its source position, resolving
// identifier uses through the SSA form. Expressions in unreachable
// code evaluate to the type range.
func (r *Result) Eval(e ast.Expr) Interval {
	return r.eval(e)
}

// transfer computes one value's interval from its origin.
func (r *Result) transfer(v *ssa.Value) Interval {
	t := v.Var.Type()
	switch v.Kind {
	case ssa.Param, ssa.Unknown:
		return TypeRange(t)
	case ssa.ZeroInit:
		if bt, ok := t.Underlying().(*types.Basic); ok && bt.Info()&(types.IsInteger|types.IsBoolean) != 0 {
			return Interval{Lo: 0, Hi: 0}
		}
		return Top()
	case ssa.Phi:
		out := Interval{Lo: 1, Hi: 0}
		for _, a := range v.Args {
			if a == nil {
				continue // unreachable predecessor
			}
			out = union(out, r.Value(a))
		}
		return out
	case ssa.Refine:
		return r.refine(r.Value(v.X), v.Var, v.Cond, v.Taken)
	case ssa.Def:
		return fit(r.defTransfer(v), t)
	}
	return TypeRange(t)
}

func (r *Result) defTransfer(v *ssa.Value) Interval {
	t := v.Var.Type()
	switch {
	case v.Op == token.INC:
		return add(r.Value(v.X), Interval{Lo: 1, Hi: 1})
	case v.Op == token.DEC:
		return sub(r.Value(v.X), Interval{Lo: 1, Hi: 1})
	case v.Op != token.ILLEGAL: // x op= e
		return r.binop(assignOp(v.Op), r.Value(v.X), r.eval(v.Expr))
	case v.Range != nil:
		return r.rangeTransfer(v)
	case v.Call != nil:
		if fn := analysis.Callee(r.info, v.Call); fn != nil && r.look != nil {
			if iv, ok := r.look.ResultRange(fn, v.Index); ok {
				return iv
			}
		}
		return TypeRange(t)
	case v.Expr != nil:
		return r.eval(v.Expr)
	}
	return TypeRange(t) // opaque definition
}

func (r *Result) rangeTransfer(v *ssa.Value) Interval {
	if v.Role != ssa.RangeIndex {
		return TypeRange(v.Var.Type())
	}
	x := v.Range.X
	tv, ok := r.info.Types[x]
	if !ok {
		return Interval{Lo: 0, Hi: Inf}
	}
	ut := tv.Type.Underlying()
	if p, ok := ut.(*types.Pointer); ok {
		ut = p.Elem().Underlying()
	}
	switch ut := ut.(type) {
	case *types.Array:
		return Interval{Lo: 0, Hi: ut.Len() - 1}
	case *types.Basic:
		if ut.Info()&types.IsInteger != 0 { // range over int: [0, n-1]
			n := r.eval(x)
			return Interval{Lo: 0, Hi: addHi(n.Hi, -1)}
		}
	}
	iv := Interval{Lo: 0, Hi: Inf}
	if id, ok := ast.Unparen(x).(*ast.Ident); ok {
		if lv, ok := r.Fn.UseOf[id]; ok {
			iv.Sym = &SymBound{Len: lv, Off: -1}
		}
	}
	return iv
}

// assignOp maps an op-assignment token to its binary operator.
func assignOp(tok token.Token) token.Token {
	switch tok {
	case token.ADD_ASSIGN:
		return token.ADD
	case token.SUB_ASSIGN:
		return token.SUB
	case token.MUL_ASSIGN:
		return token.MUL
	case token.QUO_ASSIGN:
		return token.QUO
	case token.REM_ASSIGN:
		return token.REM
	case token.AND_ASSIGN:
		return token.AND
	case token.OR_ASSIGN:
		return token.OR
	case token.XOR_ASSIGN:
		return token.XOR
	case token.SHL_ASSIGN:
		return token.SHL
	case token.SHR_ASSIGN:
		return token.SHR
	case token.AND_NOT_ASSIGN:
		return token.AND_NOT
	}
	return tok
}

func (r *Result) binop(op token.Token, a, b Interval) Interval {
	switch op {
	case token.ADD:
		return add(a, b)
	case token.SUB:
		return sub(a, b)
	case token.MUL:
		return mul(a, b)
	case token.QUO:
		return quo(a, b)
	case token.REM:
		return rem(a, b)
	case token.AND:
		return and(a, b)
	case token.OR:
		return bitOr(a, b)
	case token.XOR:
		return bitXor(a, b)
	case token.AND_NOT:
		return andNot(a, b)
	case token.SHL:
		return shl(a, b)
	case token.SHR:
		return shr(a, b)
	case token.LSS, token.GTR, token.LEQ, token.GEQ, token.EQL, token.NEQ,
		token.LAND, token.LOR:
		return Interval{Lo: 0, Hi: 1}
	}
	return Top()
}

// eval computes an expression's interval bottom-up.
func (r *Result) eval(e ast.Expr) Interval {
	if e == nil {
		return Top()
	}
	// Constants first: named constants, folded expressions, literals.
	if tv, ok := r.info.Types[e]; ok && tv.Value != nil {
		if iv, ok := constInterval(tv.Value); ok {
			return iv
		}
	}
	etype := func() types.Type {
		if tv, ok := r.info.Types[e]; ok {
			return tv.Type
		}
		return nil
	}
	switch e := e.(type) {
	case *ast.ParenExpr:
		return r.eval(e.X)
	case *ast.Ident:
		if v, ok := r.Fn.UseOf[e]; ok {
			return r.Value(v)
		}
		if t := etype(); t != nil {
			return TypeRange(t)
		}
		return Top()
	case *ast.BinaryExpr:
		out := r.binop(e.Op, r.eval(e.X), r.eval(e.Y))
		return fit(out, etype())
	case *ast.UnaryExpr:
		switch e.Op {
		case token.SUB:
			x := r.eval(e.X)
			if x.Empty() {
				return x
			}
			return fit(Interval{Lo: negSat(x.Hi), Hi: negSat(x.Lo)}, etype())
		case token.ADD:
			return r.eval(e.X)
		}
		if t := etype(); t != nil {
			return TypeRange(t)
		}
		return Top()
	case *ast.CallExpr:
		return r.evalCall(e, etype())
	}
	if t := etype(); t != nil {
		return TypeRange(t)
	}
	return Top()
}

func (r *Result) evalCall(call *ast.CallExpr, t types.Type) Interval {
	// Conversion T(x): keep x's interval when it fits, else the target
	// type's range (wrapping model).
	if tv, ok := r.info.Types[call.Fun]; ok && tv.IsType() && len(call.Args) == 1 {
		x := r.eval(call.Args[0])
		return fit(x, tv.Type)
	}
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if _, isBuiltin := r.info.Uses[id].(*types.Builtin); isBuiltin {
			switch id.Name {
			case "len":
				return r.evalLen(call)
			case "cap":
				return Interval{Lo: 0, Hi: Inf}
			case "min":
				out := r.eval(call.Args[0])
				for _, a := range call.Args[1:] {
					o := r.eval(a)
					out = Interval{Lo: min(out.Lo, o.Lo), Hi: min(out.Hi, o.Hi)}
				}
				return out
			case "max":
				out := r.eval(call.Args[0])
				for _, a := range call.Args[1:] {
					o := r.eval(a)
					out = Interval{Lo: max(out.Lo, o.Lo), Hi: max(out.Hi, o.Hi)}
				}
				return out
			}
		}
	}
	if fn := analysis.Callee(r.info, call); fn != nil && r.look != nil {
		if iv, ok := r.look.ResultRange(fn, 0); ok {
			return iv
		}
	}
	if t != nil {
		return TypeRange(t)
	}
	return Top()
}

// evalLen gives len(x) its symbolic identity when x is a tracked
// slice/string variable, and the exact length for arrays.
func (r *Result) evalLen(call *ast.CallExpr) Interval {
	arg := ast.Unparen(call.Args[0])
	if tv, ok := r.info.Types[arg]; ok {
		ut := tv.Type.Underlying()
		if p, ok := ut.(*types.Pointer); ok {
			ut = p.Elem().Underlying()
		}
		if at, ok := ut.(*types.Array); ok {
			return Interval{Lo: at.Len(), Hi: at.Len()}
		}
	}
	iv := Interval{Lo: 0, Hi: Inf}
	if id, ok := arg.(*ast.Ident); ok {
		if v, ok := r.Fn.UseOf[id]; ok {
			iv.Sym = &SymBound{Len: v, Off: 0}
		}
	}
	return iv
}

func constInterval(v constant.Value) (Interval, bool) {
	switch v.Kind() {
	case constant.Bool:
		if constant.BoolVal(v) {
			return Interval{Lo: 1, Hi: 1}, true
		}
		return Interval{Lo: 0, Hi: 0}, true
	case constant.Int:
		if c, exact := constant.Int64Val(v); exact {
			return Interval{Lo: c, Hi: c}, true
		}
		if constant.Sign(v) > 0 {
			return Interval{Lo: Inf, Hi: Inf}, true // ≥ MaxInt64
		}
		return Interval{Lo: NegInf, Hi: NegInf}, true
	}
	return Interval{}, false
}

// ---- branch refinement ---------------------------------------------

// negateCmp flips a comparison operator to its complement.
func negateCmp(op token.Token) token.Token {
	switch op {
	case token.LSS:
		return token.GEQ
	case token.LEQ:
		return token.GTR
	case token.GTR:
		return token.LEQ
	case token.GEQ:
		return token.LSS
	case token.EQL:
		return token.NEQ
	case token.NEQ:
		return token.EQL
	}
	return token.ILLEGAL
}

// mirrorCmp rewrites `e op x` as `x op' e`.
func mirrorCmp(op token.Token) token.Token {
	switch op {
	case token.LSS:
		return token.GTR
	case token.LEQ:
		return token.GEQ
	case token.GTR:
		return token.LSS
	case token.GEQ:
		return token.LEQ
	}
	return op
}

func (r *Result) mentionsVar(e ast.Expr, v *types.Var) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && r.info.Uses[id] == v {
			found = true
		}
		return !found
	})
	return found
}

// refine narrows iv by one atomic condition outcome for variable v.
func (r *Result) refine(iv Interval, v *types.Var, cond ast.Expr, taken bool) Interval {
	cond = ast.Unparen(cond)
	switch c := cond.(type) {
	case *ast.Ident:
		if r.info.Uses[c] == v { // boolean flag test
			if taken {
				return intersect(iv, Interval{Lo: 1, Hi: 1})
			}
			return intersect(iv, Interval{Lo: 0, Hi: 0})
		}
	case *ast.BinaryExpr:
		op := c.Op
		switch op {
		case token.LSS, token.LEQ, token.GTR, token.GEQ, token.EQL, token.NEQ:
		default:
			return iv
		}
		lhs, rhs := c.X, c.Y
		onLeft := r.mentionsVar(lhs, v)
		onRight := r.mentionsVar(rhs, v)
		if onLeft == onRight {
			return iv // both sides or neither: nothing safe to conclude
		}
		var other ast.Expr
		if onLeft {
			// Only refine a bare (possibly parenthesized) use; `x-1 < e`
			// constrains x-1, not x.
			if id, ok := ast.Unparen(lhs).(*ast.Ident); !ok || r.info.Uses[id] != v {
				return iv
			}
			other = rhs
		} else {
			if id, ok := ast.Unparen(rhs).(*ast.Ident); !ok || r.info.Uses[id] != v {
				return iv
			}
			other = lhs
			op = mirrorCmp(op)
		}
		if !taken {
			op = negateCmp(op)
		}
		return applyCmp(iv, op, r.eval(other))
	}
	return iv
}

// applyCmp narrows iv knowing `value op o` holds.
func applyCmp(iv Interval, op token.Token, o Interval) Interval {
	if o.Empty() {
		return iv
	}
	switch op {
	case token.LSS:
		out := intersect(iv, Interval{Lo: NegInf, Hi: addHi(o.Hi, -1)})
		if o.Sym != nil {
			out = intersect(out, Interval{Lo: NegInf, Hi: Inf,
				Sym: &SymBound{Len: o.Sym.Len, Off: addHi(o.Sym.Off, -1)}})
		}
		return out
	case token.LEQ:
		out := intersect(iv, Interval{Lo: NegInf, Hi: o.Hi})
		if o.Sym != nil {
			out = intersect(out, Interval{Lo: NegInf, Hi: Inf, Sym: o.Sym})
		}
		return out
	case token.GTR:
		return intersect(iv, Interval{Lo: addLo(o.Lo, 1), Hi: Inf})
	case token.GEQ:
		return intersect(iv, Interval{Lo: o.Lo, Hi: Inf})
	case token.EQL:
		return intersect(iv, o)
	case token.NEQ:
		if c, ok := o.Const(); ok && !iv.Empty() {
			if c == iv.Lo && iv.Lo != NegInf {
				return Interval{Lo: iv.Lo + 1, Hi: iv.Hi, Sym: iv.Sym}
			}
			if c == iv.Hi && iv.Hi != Inf {
				return Interval{Lo: iv.Lo, Hi: iv.Hi - 1, Sym: iv.Sym}
			}
		}
	}
	return iv
}

// ---- the rangefacts producer ---------------------------------------

// Rng is the flat (version-free) serialization of an interval inside a
// fact.
type Rng struct {
	Lo, Hi int64
}

// ResultRanges is the per-function fact: the proven range of each
// result, in signature order. A slot equal to its type range proves
// nothing and is still recorded so indices line up.
type ResultRanges struct {
	Results []Rng
}

// AFact marks ResultRanges as a fact type.
func (*ResultRanges) AFact() {}

// Facts is the rangefacts analyzer: a reporting-free producer that
// publishes every declared function's provable result ranges,
// bottom-up over the package call graph (SCCs in callees-first order,
// mirroring the summary layer), so interval analyses in callers
// tighten through calls.
var Facts = &analysis.Analyzer{
	Name:      "rangefacts",
	Doc:       "publish per-function result ranges for the interval layer (no findings of its own)",
	FactTypes: []analysis.Fact{new(ResultRanges)},
	Run:       runFacts,
}

// factLookuper resolves callee result ranges from the fact store,
// with an in-flight overlay for same-SCC callees.
type factLookuper struct {
	pass  *analysis.Pass
	local map[*types.Func][]Rng
}

func (l *factLookuper) ResultRange(fn *types.Func, result int) (Interval, bool) {
	if rs, ok := l.local[fn]; ok {
		if result < len(rs) {
			return Interval{Lo: rs[result].Lo, Hi: rs[result].Hi}, true
		}
		return Interval{}, false
	}
	var fact ResultRanges
	if l.pass.ImportObjectFact(fn, &fact) && result < len(fact.Results) {
		return Interval{Lo: fact.Results[result].Lo, Hi: fact.Results[result].Hi}, true
	}
	return Interval{}, false
}

// PassLookuper adapts a pass's imported rangefacts for analyzers that
// require Facts.
func PassLookuper(pass *analysis.Pass) Lookuper {
	return &factLookuper{pass: pass, local: map[*types.Func][]Rng{}}
}

func runFacts(pass *analysis.Pass) error {
	cg := callgraph.New(pass.Files, pass.TypesInfo)
	look := &factLookuper{pass: pass, local: map[*types.Func][]Rng{}}
	for _, scc := range cg.SCCs() {
		// Two rounds per component: the first computes each function
		// against already-published callee facts (recursive callees
		// resolve to their type ranges — sound), the second narrows
		// through the first round's in-component results.
		for round := 0; round < 2; round++ {
			for _, node := range scc {
				look.local[node.Fn] = resultRanges(pass, node.Decl, look)
			}
		}
	}
	for fn, rs := range look.local {
		if rs == nil {
			continue
		}
		// Publish only informative facts: at least one result tighter
		// than its type range.
		sig := fn.Type().(*types.Signature)
		informative := false
		for i := 0; i < sig.Results().Len() && i < len(rs); i++ {
			tr := TypeRange(sig.Results().At(i).Type())
			if rs[i].Lo > tr.Lo || rs[i].Hi < tr.Hi {
				informative = true
			}
		}
		if informative {
			pass.ExportObjectFact(fn, &ResultRanges{Results: rs})
		}
	}
	return nil
}

// resultRanges computes the joined interval of each result over every
// reachable return statement, nil when nothing is provable.
func resultRanges(pass *analysis.Pass, fd *ast.FuncDecl, look Lookuper) []Rng {
	sig, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func)
	if !ok {
		return nil
	}
	nres := sig.Type().(*types.Signature).Results().Len()
	if nres == 0 {
		return nil
	}
	g := cfg.New(fd.Body)
	fn := ssa.Build(fd, g, pass.TypesInfo)
	res := Analyze(fn, pass.TypesInfo, look)

	out := make([]Interval, nres)
	for i := range out {
		out[i] = Interval{Lo: 1, Hi: 0} // bottom: no return seen yet
	}
	for _, blk := range g.Blocks {
		if !fn.Reachable(blk) {
			continue
		}
		for _, n := range blk.Nodes {
			ret, ok := n.(*ast.ReturnStmt)
			if !ok {
				continue
			}
			if len(ret.Results) != nres {
				// Bare return of named results (or a tuple-forwarding
				// return): versions at the return are not recoverable
				// here, so results are unconstrained.
				for i := range out {
					out[i] = union(out[i], TypeRange(sigResult(sig, i)))
				}
				continue
			}
			for i, e := range ret.Results {
				out[i] = union(out[i], fit(res.Eval(e), sigResult(sig, i)))
			}
		}
	}
	rs := make([]Rng, nres)
	for i, iv := range out {
		if iv.Empty() { // no reachable return: function never returns
			iv = TypeRange(sigResult(sig, i))
		}
		rs[i] = Rng{Lo: iv.Lo, Hi: iv.Hi}
	}
	return rs
}

func sigResult(fn *types.Func, i int) types.Type {
	return fn.Type().(*types.Signature).Results().At(i).Type()
}
