package interval

import (
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"strings"
	"testing"

	"cfpgrowth/internal/analysis"
	"cfpgrowth/internal/analysis/cfg"
	"cfpgrowth/internal/analysis/ssa"
)

// analyzeFn typechecks src and runs the interval solver on the named
// function.
func analyzeFn(t *testing.T, src, name string, look Lookuper) (*ast.FuncDecl, *ssa.Func, *Result) {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "x.go", src, 0)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	info := &types.Info{
		Types: map[ast.Expr]types.TypeAndValue{},
		Defs:  map[*ast.Ident]types.Object{},
		Uses:  map[*ast.Ident]types.Object{},
	}
	conf := types.Config{Importer: importer.Default()}
	if _, err := conf.Check("p", fset, []*ast.File{f}, info); err != nil {
		t.Fatalf("typecheck: %v", err)
	}
	for _, d := range f.Decls {
		if fd, ok := d.(*ast.FuncDecl); ok && fd.Name.Name == name {
			fn := ssa.Build(fd, cfg.New(fd.Body), info)
			return fd, fn, Analyze(fn, info, look)
		}
	}
	t.Fatalf("function %s not found", name)
	return nil, nil, nil
}

// useIval returns the interval of the n-th resolved use (0-based,
// source order) of the named identifier.
func useIval(t *testing.T, fd *ast.FuncDecl, fn *ssa.Func, res *Result, name string, n int) Interval {
	t.Helper()
	v := useVal(t, fd, fn, name, n)
	return res.Value(v)
}

func useVal(t *testing.T, fd *ast.FuncDecl, fn *ssa.Func, name string, n int) *ssa.Value {
	t.Helper()
	var vals []*ssa.Value
	ast.Inspect(fd.Body, func(m ast.Node) bool {
		if id, ok := m.(*ast.Ident); ok && id.Name == name {
			if v, ok := fn.UseOf[id]; ok {
				vals = append(vals, v)
			}
		}
		return true
	})
	if n >= len(vals) {
		t.Fatalf("ident %q has %d resolved uses, want at least %d", name, len(vals), n+1)
	}
	return vals[n]
}

func wantRange(t *testing.T, iv Interval, lo, hi int64) {
	t.Helper()
	if iv.Lo != lo || iv.Hi != hi {
		t.Errorf("interval = %v, want [%d, %d]", iv, lo, hi)
	}
}

func TestConstantFolding(t *testing.T) {
	src := `package p
func f() int {
	x := 3
	y := x + 4
	return y * 2
}`
	fd, fn, res := analyzeFn(t, src, "f", nil)
	wantRange(t, useIval(t, fd, fn, res, "y", 0), 7, 7)
}

func TestGuardRefinement(t *testing.T) {
	src := `package p
func f(i int) int {
	if i >= 0 && i < 10 {
		return i
	}
	return 0
}`
	fd, fn, res := analyzeFn(t, src, "f", nil)
	// i inside the guard: both conjuncts applied.
	wantRange(t, useIval(t, fd, fn, res, "i", 2), 0, 9)
}

func TestNegativeGuardRefinement(t *testing.T) {
	src := `package p
func f(i int) int {
	if i < 0 {
		return 0
	}
	return i
}`
	fd, fn, res := analyzeFn(t, src, "f", nil)
	// i after the early return: the false edge of i < 0.
	iv := useIval(t, fd, fn, res, "i", 1)
	if iv.Lo != 0 || iv.Hi != Inf {
		t.Errorf("post-guard i = %v, want [0, +∞]", iv)
	}
}

func TestLoopWideningAndNarrowing(t *testing.T) {
	src := `package p
func f() int {
	s := 0
	for i := 0; i < 10; i++ {
		s = i
	}
	return s
}`
	fd, fn, res := analyzeFn(t, src, "f", nil)
	// i inside the body (RHS of s = i): refined by the loop condition.
	wantRange(t, useIval(t, fd, fn, res, "i", 1), 0, 9)
}

func TestPostLoopCursorValue(t *testing.T) {
	src := `package p
func f() int {
	i := 0
	for i < 10 {
		i++
	}
	return i
}`
	fd, fn, res := analyzeFn(t, src, "f", nil)
	// After the loop, i is exactly 10: phi ⊆ [0,10] meets ¬(i<10).
	wantRange(t, useIval(t, fd, fn, res, "i", 2), 10, 10)
}

func TestSymbolicLenBound(t *testing.T) {
	src := `package p
func f(b []byte, i int) byte {
	if i >= 0 && i < len(b) {
		return b[i]
	}
	return 0
}`
	fd, fn, res := analyzeFn(t, src, "f", nil)
	iv := useIval(t, fd, fn, res, "i", 2) // i in b[i]
	if iv.Lo != 0 {
		t.Errorf("guarded index lower bound = %d, want 0", iv.Lo)
	}
	if iv.Sym == nil {
		t.Fatal("guarded index lost its symbolic len bound")
	}
	if iv.Sym.Off != -1 {
		t.Errorf("symbolic offset = %d, want -1 (strict <)", iv.Sym.Off)
	}
	// The bound must name the same slice version the index reads.
	bIdx := useVal(t, fd, fn, "b", 1) // b in b[i]
	if iv.Sym.Len != bIdx {
		t.Error("symbolic bound is against a different version of b than the index site")
	}
}

func TestSymbolicBoundSurvivesDecrement(t *testing.T) {
	src := `package p
func f(b []byte, i int) byte {
	if i >= 1 && i <= len(b) {
		j := i - 1
		return b[j]
	}
	return 0
}`
	fd, fn, res := analyzeFn(t, src, "f", nil)
	iv := useIval(t, fd, fn, res, "j", 0)
	if iv.Lo != 0 {
		t.Errorf("j lower bound = %d, want 0", iv.Lo)
	}
	if iv.Sym == nil || iv.Sym.Off != -1 {
		t.Errorf("j = %v, want symbolic ≤ len-1 carried through the -1", iv)
	}
}

func TestMaskAndShift(t *testing.T) {
	src := `package p
func f(x uint64) uint64 {
	m := x & 0xFF
	s := m << 4
	r := x >> 32
	return m + s + r
}`
	fd, fn, res := analyzeFn(t, src, "f", nil)
	wantRange(t, useIval(t, fd, fn, res, "m", 1), 0, 255)
	wantRange(t, useIval(t, fd, fn, res, "s", 0), 0, 255<<4)
	// Unsigned values above MaxInt64 saturate: a right shift of an
	// unbounded uint64 keeps the +∞ sentinel.
	iv := useIval(t, fd, fn, res, "r", 0)
	if iv.Lo != 0 || iv.Hi != Inf {
		t.Errorf("x >> 32 = %v, want [0, +∞] (sticky sentinel)", iv)
	}
}

func TestShiftAmountRefinement(t *testing.T) {
	src := `package p
func f(x uint64, n uint) uint64 {
	if n < 8 {
		return x << n
	}
	return 0
}`
	fd, fn, res := analyzeFn(t, src, "f", nil)
	wantRange(t, useIval(t, fd, fn, res, "n", 1), 0, 7)
}

func TestConversionWrapModel(t *testing.T) {
	src := `package p
func f(x int, y int) byte {
	var a byte
	if x >= 0 && x < 100 {
		a = byte(x)
	}
	b := byte(y)
	_ = b
	return a
}`
	fd, _, res := analyzeFn(t, src, "f", nil)
	// Proven-fitting conversion keeps the range; unproven one widens
	// to the target type's full range.
	var conv []ast.Expr
	ast.Inspect(fd.Body, func(m ast.Node) bool {
		if c, ok := m.(*ast.CallExpr); ok {
			if id, ok := c.Fun.(*ast.Ident); ok && id.Name == "byte" {
				conv = append(conv, c)
			}
		}
		return true
	})
	if len(conv) != 2 {
		t.Fatalf("found %d byte conversions, want 2", len(conv))
	}
	wantRange(t, res.Eval(conv[0]), 0, 99)
	wantRange(t, res.Eval(conv[1]), 0, 255)
}

func TestSubtractionWrapsUnsigned(t *testing.T) {
	src := `package p
func f(x uint32) uint32 {
	y := x - 1
	return y
}`
	fd, fn, res := analyzeFn(t, src, "f", nil)
	// x may be 0, so x-1 wraps: the sound answer is the full uint32
	// range, not [-1, ...].
	wantRange(t, useIval(t, fd, fn, res, "y", 0), 0, 1<<32-1)
}

func TestAssertRefinementFeedsIntervals(t *testing.T) {
	src := `package p
const debugChecks = false
func assertf(cond bool, msg string) {}
func f(d uint64) uint64 {
	if debugChecks {
		assertf(d >= 1 && d <= 100, "range")
	}
	return d
}`
	fd, fn, res := analyzeFn(t, src, "f", nil)
	wantRange(t, useIval(t, fd, fn, res, "d", 2), 1, 100)
}

func TestMinMaxBuiltins(t *testing.T) {
	src := `package p
func f(a, b int) int {
	x := min(a, 10)
	y := max(b, 0)
	return x + y
}`
	fd, fn, res := analyzeFn(t, src, "f", nil)
	iv := useIval(t, fd, fn, res, "x", 0)
	if iv.Hi != 10 {
		t.Errorf("min(a, 10) upper bound = %d, want 10", iv.Hi)
	}
	iv = useIval(t, fd, fn, res, "y", 0)
	if iv.Lo != 0 {
		t.Errorf("max(b, 0) lower bound = %d, want 0", iv.Lo)
	}
}

func TestRangeIndexBound(t *testing.T) {
	src := `package p
func f(xs []int) int {
	s := 0
	for i := range xs {
		s += i
	}
	return s
}`
	fd, fn, res := analyzeFn(t, src, "f", nil)
	iv := useIval(t, fd, fn, res, "i", 0)
	if iv.Lo != 0 || iv.Sym == nil || iv.Sym.Off != -1 {
		t.Errorf("range index = %v, want [0,...] with symbolic ≤ len-1", iv)
	}
}

func TestRangeOverIntBound(t *testing.T) {
	src := `package p
func f() int {
	s := 0
	for i := range 8 {
		s += i
	}
	return s
}`
	fd, fn, res := analyzeFn(t, src, "f", nil)
	wantRange(t, useIval(t, fd, fn, res, "i", 0), 0, 7)
}

func TestArrayIndexExact(t *testing.T) {
	src := `package p
func f(a [16]byte, i int) byte {
	if i >= 0 && i < len(a) {
		return a[i]
	}
	return 0
}`
	fd, fn, res := analyzeFn(t, src, "f", nil)
	wantRange(t, useIval(t, fd, fn, res, "i", 2), 0, 15)
}

type stubLookup struct{ iv Interval }

func (s stubLookup) ResultRange(fn *types.Func, result int) (Interval, bool) {
	return s.iv, true
}

func TestCalleeFactTightensCall(t *testing.T) {
	src := `package p
func g() int
func f() int {
	v := g()
	return v
}`
	fd, fn, res := analyzeFn(t, src, "f", stubLookup{Interval{Lo: 1, Hi: 8}})
	wantRange(t, useIval(t, fd, fn, res, "v", 0), 1, 8)
}

func TestRemBounded(t *testing.T) {
	src := `package p
func f(x uint64) uint64 {
	r := x % 8
	return r
}`
	fd, fn, res := analyzeFn(t, src, "f", nil)
	wantRange(t, useIval(t, fd, fn, res, "r", 0), 0, 7)
}

// rangeProbe reports each function's published ResultRanges fact, so
// the fixture's want comments check the rangefacts producer end to
// end, facts included.
var rangeProbe = &analysis.Analyzer{
	Name:      "rangeprobe",
	Doc:       "test probe: reports each function's published result ranges",
	Requires:  []*analysis.Analyzer{Facts},
	FactTypes: []analysis.Fact{new(ResultRanges)},
	Run: func(pass *analysis.Pass) error {
		for _, fd := range pass.FuncDecls() {
			fn, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			var rr ResultRanges
			if !pass.ImportObjectFact(fn, &rr) {
				continue
			}
			parts := make([]string, len(rr.Results))
			for i, r := range rr.Results {
				parts[i] = Interval{Lo: r.Lo, Hi: r.Hi}.String()
			}
			pass.Reportf(fd.Name.Pos(), "results %s", strings.Join(parts, " "))
		}
		return nil
	},
}

func TestRangeFacts(t *testing.T) {
	analysis.RunFixture(t, rangeProbe, "testdata/rangefacts")
}
