// Package analysis is a minimal, stdlib-only reimplementation of the
// golang.org/x/tools/go/analysis vocabulary: an Analyzer inspects one
// type-checked package through a Pass and reports Diagnostics. It
// exists because this module is dependency-free by policy; the API is
// kept deliberately close to the upstream one (Analyzer.Name/Doc/Run,
// Pass.Fset/Files/Pkg/TypesInfo, Pass.Reportf) so the repo-specific
// analyzers under internal/analysis/... could be ported to the real
// framework by changing imports only.
//
// Differences from x/tools: no SuggestedFixes, Run returns only an
// error, and facts live in one in-memory FactStore per run (the
// single-Loader driver shares types.Object identities across packages,
// so no fact serialization is needed — see facts.go). Analyzers form a
// Requires DAG; the runner topologically sorts it so fact producers
// run before their consumers. Suppression is supported through line
// directives:
//
//	//cfplint:ignore <analyzer>[,<analyzer>...] <reason>
//
// placed on the flagged line or the line directly above it. The reason
// is mandatory; a directive without one is itself reported.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// An Analyzer is one static-analysis rule.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in
	// //cfplint:ignore directives.
	Name string
	// Doc is the one-paragraph description shown by cfplint -help: the
	// invariant the analyzer guards and why it matters.
	Doc string
	// Requires lists analyzers that must run first on each package
	// (typically fact producers). The runner expands and topologically
	// sorts the closure; cycles are an error.
	Requires []*Analyzer
	// FactTypes declares the fact types this analyzer exports or
	// imports, as pointers to zero values (e.g. new(FooFact)).
	// Undeclared fact use is a programming error and panics.
	FactTypes []Fact
	// Run applies the analyzer to one package.
	Run func(*Pass) error
}

// A Pass connects an Analyzer to the single type-checked package it is
// being applied to.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	report func(Diagnostic)
	facts  *FactStore
}

// A Diagnostic is one finding.
type Diagnostic struct {
	Pos     token.Pos
	Message string
}

// Report emits a diagnostic.
func (p *Pass) Report(d Diagnostic) { p.report(d) }

// Reportf emits a diagnostic at pos with a Sprintf-formatted message.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// Uses resolves e (an identifier or selector expression, possibly
// parenthesized) to the object it refers to, or nil.
func Uses(info *types.Info, e ast.Expr) types.Object {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		return info.Uses[e]
	case *ast.SelectorExpr:
		return info.Uses[e.Sel]
	}
	return nil
}

// IsPkgObj reports whether e refers to the package-level object
// pkgPath.name.
func IsPkgObj(info *types.Info, e ast.Expr, pkgPath, name string) bool {
	obj := Uses(info, e)
	return obj != nil && obj.Name() == name &&
		obj.Pkg() != nil && obj.Pkg().Path() == pkgPath
}

// Callee returns the called function or method of call, or nil for
// calls through function values, built-ins, and conversions.
func Callee(info *types.Info, call *ast.CallExpr) *types.Func {
	fn, _ := Uses(info, call.Fun).(*types.Func)
	return fn
}

// IsByteSlice reports whether the type of e is []byte (possibly through
// a named type).
func IsByteSlice(info *types.Info, e ast.Expr) bool {
	tv, ok := info.Types[e]
	if !ok || tv.Type == nil {
		return false
	}
	sl, ok := tv.Type.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	b, ok := sl.Elem().Underlying().(*types.Basic)
	return ok && b.Kind() == types.Byte
}

// IsByte reports whether the type of e is byte/uint8 (possibly named).
func IsByte(info *types.Info, e ast.Expr) bool {
	tv, ok := info.Types[e]
	if !ok || tv.Type == nil {
		return false
	}
	b, ok := tv.Type.Underlying().(*types.Basic)
	return ok && b.Kind() == types.Byte
}

// WalkStack traverses root in depth-first order, invoking fn with each
// node and the stack of its ancestors (outermost first, not including
// n itself). It is the parent-aware variant of ast.Inspect that
// context-sensitive rules need.
func WalkStack(root ast.Node, fn func(n ast.Node, stack []ast.Node)) {
	var stack []ast.Node
	ast.Inspect(root, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		fn(n, stack)
		stack = append(stack, n)
		return true
	})
}

// FuncDecls yields every function declaration with a body in the pass,
// the granularity at which path-sensitive rules (sinkguard,
// varintbounds) approximate "on the same path": a check anywhere
// earlier in the same declaration, including inside nested function
// literals, satisfies them.
func (p *Pass) FuncDecls() []*ast.FuncDecl {
	var out []*ast.FuncDecl
	for _, f := range p.Files {
		for _, d := range f.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok && fd.Body != nil {
				out = append(out, fd)
			}
		}
	}
	return out
}
