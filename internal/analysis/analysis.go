// Package analysis is a minimal, stdlib-only reimplementation of the
// golang.org/x/tools/go/analysis vocabulary: an Analyzer inspects one
// type-checked package through a Pass and reports Diagnostics. It
// exists because this module is dependency-free by policy; the API is
// kept deliberately close to the upstream one (Analyzer.Name/Doc/Run,
// Pass.Fset/Files/Pkg/TypesInfo, Pass.Reportf) so the repo-specific
// analyzers under internal/analysis/... could be ported to the real
// framework by changing imports only.
//
// Differences from x/tools: no Facts, no Requires graph, no
// SuggestedFixes, and Run returns only an error. Suppression is
// supported through line directives:
//
//	//cfplint:ignore <analyzer>[,<analyzer>...] <reason>
//
// placed on the flagged line or the line directly above it. The reason
// is mandatory; a directive without one is itself reported.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// An Analyzer is one static-analysis rule.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in
	// //cfplint:ignore directives.
	Name string
	// Doc is the one-paragraph description shown by cfplint -help: the
	// invariant the analyzer guards and why it matters.
	Doc string
	// Run applies the analyzer to one package.
	Run func(*Pass) error
}

// A Pass connects an Analyzer to the single type-checked package it is
// being applied to.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	report func(Diagnostic)
}

// A Diagnostic is one finding.
type Diagnostic struct {
	Pos     token.Pos
	Message string
}

// Report emits a diagnostic.
func (p *Pass) Report(d Diagnostic) { p.report(d) }

// Reportf emits a diagnostic at pos with a Sprintf-formatted message.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// Uses resolves e (an identifier or selector expression, possibly
// parenthesized) to the object it refers to, or nil.
func Uses(info *types.Info, e ast.Expr) types.Object {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		return info.Uses[e]
	case *ast.SelectorExpr:
		return info.Uses[e.Sel]
	}
	return nil
}

// IsPkgObj reports whether e refers to the package-level object
// pkgPath.name.
func IsPkgObj(info *types.Info, e ast.Expr, pkgPath, name string) bool {
	obj := Uses(info, e)
	return obj != nil && obj.Name() == name &&
		obj.Pkg() != nil && obj.Pkg().Path() == pkgPath
}

// Callee returns the called function or method of call, or nil for
// calls through function values, built-ins, and conversions.
func Callee(info *types.Info, call *ast.CallExpr) *types.Func {
	fn, _ := Uses(info, call.Fun).(*types.Func)
	return fn
}

// IsByteSlice reports whether the type of e is []byte (possibly through
// a named type).
func IsByteSlice(info *types.Info, e ast.Expr) bool {
	tv, ok := info.Types[e]
	if !ok || tv.Type == nil {
		return false
	}
	sl, ok := tv.Type.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	b, ok := sl.Elem().Underlying().(*types.Basic)
	return ok && b.Kind() == types.Byte
}

// IsByte reports whether the type of e is byte/uint8 (possibly named).
func IsByte(info *types.Info, e ast.Expr) bool {
	tv, ok := info.Types[e]
	if !ok || tv.Type == nil {
		return false
	}
	b, ok := tv.Type.Underlying().(*types.Basic)
	return ok && b.Kind() == types.Byte
}

// WalkStack traverses root in depth-first order, invoking fn with each
// node and the stack of its ancestors (outermost first, not including
// n itself). It is the parent-aware variant of ast.Inspect that
// context-sensitive rules need.
func WalkStack(root ast.Node, fn func(n ast.Node, stack []ast.Node)) {
	var stack []ast.Node
	ast.Inspect(root, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		fn(n, stack)
		stack = append(stack, n)
		return true
	})
}

// FuncDecls yields every function declaration with a body in the pass,
// the granularity at which path-sensitive rules (sinkguard,
// varintbounds) approximate "on the same path": a check anywhere
// earlier in the same declaration, including inside nested function
// literals, satisfies them.
func (p *Pass) FuncDecls() []*ast.FuncDecl {
	var out []*ast.FuncDecl
	for _, f := range p.Files {
		for _, d := range f.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok && fd.Body != nil {
				out = append(out, fd)
			}
		}
	}
	return out
}
