// Fixture for the atomicfield analyzer: struct counters updated with
// sync/atomic, with and without stray plain accesses, and the 64-bit
// alignment rule for 32-bit targets.
package fixture

import "sync/atomic"

// stats mixes atomic and plain access to the same field.
type stats struct {
	hits int64
	name string
}

func (s *stats) bump() {
	atomic.AddInt64(&s.hits, 1)
}

func (s *stats) reset() {
	s.hits = 0 // want `field hits is accessed with atomic.AddInt64 elsewhere; this plain access races`
}

func (s *stats) read() int64 {
	return s.hits // want `field hits is accessed with atomic.AddInt64 elsewhere; this plain access races`
}

// clean accesses its counter atomically everywhere.
type clean struct {
	hits int64
}

func (c *clean) bump()       { atomic.AddInt64(&c.hits, 1) }
func (c *clean) read() int64 { return atomic.LoadInt64(&c.hits) }
func (c *clean) reset()      { atomic.StoreInt64(&c.hits, 0) }

// typed uses the typed atomics, which are safe by construction: every
// access goes through a method, so no plain access can exist.
type typed struct {
	hits atomic.Int64
	peak atomic.Int64
}

func (t *typed) bump() {
	t.hits.Add(1)
	for {
		cur := t.hits.Load()
		if cur <= t.peak.Load() || t.peak.CompareAndSwap(t.peak.Load(), cur) {
			return
		}
	}
}

// misaligned puts a 64-bit atomic counter after a bool: on 386/arm the
// field lands at offset 4 and atomic.AddUint64 faults.
type misaligned struct {
	closed bool
	n      uint64 // want `64-bit atomic field n is at offset 4 of misaligned, not 8-byte aligned on 32-bit targets`
}

func (m *misaligned) bump() { atomic.AddUint64(&m.n, 1) }

// aligned leads with the 64-bit field, the documented fix.
type aligned struct {
	n      uint64
	closed bool
}

func (a *aligned) bump() { atomic.AddUint64(&a.n, 1) }

// narrow32 shows that 32-bit atomics have no alignment requirement
// beyond their natural one, even after a bool.
type narrow32 struct {
	closed bool
	n      uint32
}

func (w *narrow32) bump() { atomic.AddUint32(&w.n, 1) }

// untrackedField is never used atomically, so plain access is fine.
type untrackedField struct {
	hits int64
}

func (u *untrackedField) bump() { u.hits++ }
