// Package atomicfield guards the atomicity discipline of counter
// fields like the ones in obs.Recorder. A field whose address is ever
// passed to a sync/atomic function is an atomic field: every other
// access must go through sync/atomic too, because one plain load or
// store next to atomic updates is a data race the race detector only
// catches when the schedule cooperates. The analyzer also checks the
// 64-bit alignment rule: sync/atomic's 64-bit operations require
// 8-byte alignment, which 32-bit targets only guarantee for the first
// word of an allocation, so a plain int64/uint64 atomic field must sit
// at an 8-byte offset in its struct (typed atomic.Int64/Uint64 embed
// an alignment marker and are exempt — and are the preferred fix).
package atomicfield

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"cfpgrowth/internal/analysis"
)

// Analyzer is the atomicfield rule.
var Analyzer = &analysis.Analyzer{
	Name: "atomicfield",
	Doc: `requires struct fields used with sync/atomic to be accessed
atomically everywhere, and 64-bit plain atomic fields to be 8-byte
aligned for 32-bit targets (prefer the typed atomic.Int64/Uint64)`,
	Run: run,
}

// atomicUse records how a field is used atomically.
type atomicUse struct {
	pos    token.Pos // one representative sync/atomic call site
	is64   bool      // used with a 64-bit operation
	opName string    // e.g. "atomic.AddInt64"
}

func run(pass *analysis.Pass) error {
	// Pass 1: collect fields whose address flows into a sync/atomic
	// function, remembering the selector nodes already blessed as
	// atomic so pass 2 can skip them.
	fields := map[*types.Var]*atomicUse{}
	blessed := map[*ast.SelectorExpr]bool{}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := analysis.Callee(pass.TypesInfo, call)
			if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "sync/atomic" {
				return true
			}
			if sig, ok := fn.Type().(*types.Signature); !ok || sig.Recv() != nil {
				return true // methods on typed atomics are safe by construction
			}
			if len(call.Args) == 0 {
				return true
			}
			sel, obj := addressedField(pass.TypesInfo, call.Args[0])
			if obj == nil {
				return true
			}
			blessed[sel] = true
			u := fields[obj]
			if u == nil {
				u = &atomicUse{pos: call.Pos(), opName: "atomic." + fn.Name()}
				fields[obj] = u
			}
			u.is64 = u.is64 || strings.Contains(fn.Name(), "64")
			return true
		})
	}
	if len(fields) == 0 {
		return nil
	}

	// Pass 2: any other access to an atomic field is a race. Taking
	// the address without calling sync/atomic is reported too: the
	// pointer's eventual dereference is invisible to this analyzer, so
	// the only checkable discipline is "addresses go straight into
	// sync/atomic calls".
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok || blessed[sel] {
				return true
			}
			obj, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Var)
			if !ok || !obj.IsField() {
				return true
			}
			u, ok := fields[obj]
			if !ok {
				return true
			}
			pass.Reportf(sel.Sel.Pos(),
				"field %s is accessed with %s elsewhere; this plain access races with it (use sync/atomic for every access, or a typed atomic.Int64)",
				obj.Name(), u.opName)
			return true
		})
	}

	// Alignment: plain 64-bit atomic fields in package-local structs
	// must land on an 8-byte offset under 32-bit layout.
	checkAlignment(pass, fields)
	return nil
}

// addressedField unwraps &x.f (possibly parenthesized) to the selector
// node and the field object it names.
func addressedField(info *types.Info, e ast.Expr) (*ast.SelectorExpr, *types.Var) {
	un, ok := ast.Unparen(e).(*ast.UnaryExpr)
	if !ok || un.Op != token.AND {
		return nil, nil
	}
	sel, ok := ast.Unparen(un.X).(*ast.SelectorExpr)
	if !ok {
		return nil, nil
	}
	obj, ok := info.Uses[sel.Sel].(*types.Var)
	if !ok || !obj.IsField() {
		return nil, nil
	}
	return sel, obj
}

// checkAlignment walks the named struct types of the current package
// and reports 64-bit atomic fields whose offset under 32-bit ("386")
// layout is not a multiple of 8.
func checkAlignment(pass *analysis.Pass, fields map[*types.Var]*atomicUse) {
	sizes := types.SizesFor("gc", "386")
	if sizes == nil {
		return
	}
	scope := pass.Pkg.Scope()
	names := scope.Names()
	sort.Strings(names)
	for _, name := range names {
		tn, ok := scope.Lookup(name).(*types.TypeName)
		if !ok {
			continue
		}
		st, ok := tn.Type().Underlying().(*types.Struct)
		if !ok {
			continue
		}
		var vars []*types.Var
		for i := 0; i < st.NumFields(); i++ {
			vars = append(vars, st.Field(i))
		}
		if len(vars) == 0 {
			continue
		}
		offsets := sizes.Offsetsof(vars)
		for i, v := range vars {
			u, ok := fields[v]
			if !ok || !u.is64 || !is64BitBasic(v.Type()) {
				continue
			}
			if offsets[i]%8 != 0 {
				pass.Reportf(v.Pos(),
					"64-bit atomic field %s is at offset %d of %s, not 8-byte aligned on 32-bit targets (%s would fault); move it to the front of the struct or use atomic.%s",
					v.Name(), offsets[i], tn.Name(), u.opName, typedAtomicName(v.Type()))
			}
		}
	}
}

// is64BitBasic reports whether t is a plain int64/uint64 (typed
// atomic.Int64 etc. carry their own alignment and never get here
// because their address is not the direct sync/atomic argument).
func is64BitBasic(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && (b.Kind() == types.Int64 || b.Kind() == types.Uint64)
}

func typedAtomicName(t types.Type) string {
	if b, ok := t.Underlying().(*types.Basic); ok && b.Kind() == types.Uint64 {
		return "Uint64"
	}
	return "Int64"
}
