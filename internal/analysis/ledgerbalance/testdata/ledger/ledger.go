// Package ledger exercises ledgerbalance: balance violations across
// return paths, the PR-6 charge-outside-span bug class, and the
// cross-function cases that only callee summaries can see.
package ledger

import (
	"errors"

	"cfpgrowth/internal/mine"
	"cfpgrowth/internal/obs"
)

var errBoom = errors.New("boom")

type big struct{ data []byte }

// --- intra-function balance ---

// The error return skips the Free.
func leakOnErr(t mine.MemTracker, ok bool) error {
	t.Alloc(100) // want `not released on every return path`
	if !ok {
		return errBoom
	}
	t.Free(100)
	return nil
}

// A deferred free covers every exit.
func balancedDefer(t mine.MemTracker, ok bool) error {
	t.Alloc(100)
	defer t.Free(100)
	if !ok {
		return errBoom
	}
	return nil
}

// Free-before-return on each path is fine too.
func balancedExplicit(t mine.MemTracker, ok bool) error {
	t.Alloc(100)
	if !ok {
		t.Free(100)
		return errBoom
	}
	t.Free(100)
	return nil
}

// A charge held on every path with the resource handed out is the
// acquire shape, not a leak: the caller inherits the obligation.
func acquireBuf(t mine.MemTracker) *big {
	b := &big{data: make([]byte, 256)}
	t.Alloc(256)
	return b
}

// A free with no local charge: balances the caller's token.
func releaseBuf(t mine.MemTracker, b *big) {
	t.Free(256)
	b.data = nil
}

// --- cross-function balance via summaries ---

// The token comes from acquireBuf's ChargesNet summary and the release
// from releaseBuf's Releases summary; no Alloc/Free pair is visible in
// this function, so only callee summaries catch the leaking path.
func crossLeak(t mine.MemTracker, ok bool) error {
	b := acquireBuf(t) // want `ledger charge acquired by acquireBuf\(t\) is not released on every return path`
	if !ok {
		return errBoom
	}
	releaseBuf(t, b)
	return nil
}

func crossBalanced(t mine.MemTracker, ok bool) error {
	b := acquireBuf(t)
	defer releaseBuf(t, b)
	if !ok {
		return errBoom
	}
	return nil
}

// --- span attribution (the PR-6 bug class) ---

// The charge runs after the span ended: its bytes vanish from the
// phase aggregates.
func prSixBare(r *obs.Recorder, t mine.MemTracker) {
	sp := r.Start("build")
	sp.End()
	t.Alloc(64) // want `outside any open obs span`
	t.Free(64)
}

func spanCovered(r *obs.Recorder, t mine.MemTracker) {
	sp := r.Start("build")
	t.Alloc(64)
	sp.End()
	// Frees between spans are balance-checked but carry no attribution
	// obligation (releases are applied against the gauge immediately).
	t.Free(64)
}

// A function that starts no spans has no attribution obligation: its
// span-using callers cover the call site instead.
func noSpans(t mine.MemTracker) {
	t.Alloc(8)
	t.Free(8)
}

// A charge hidden inside a callee still needs span cover at the call.
func viaBare(r *obs.Recorder, t mine.MemTracker) {
	sp := r.Start("work")
	sp.End()
	noSpans(t) // want `call to noSpans charges the ledger outside any open obs span`
}

func viaCovered(r *obs.Recorder, t mine.MemTracker) {
	sp := r.Start("work")
	noSpans(t)
	sp.End()
}

// A deferred release helper discharges the token at every exit.
func deferredHelper(t mine.MemTracker, ok bool) error {
	b := acquireBuf(t)
	defer func() {
		releaseBuf(t, b)
	}()
	if !ok {
		return errBoom
	}
	return nil
}
