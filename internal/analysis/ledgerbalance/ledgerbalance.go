// Package ledgerbalance guards the modeled-byte ledger, the paper's
// memory-efficiency claim made executable: every positive charge
// (mine.Control.Charge, MemTracker.Alloc, obs.Recorder.Alloc) must be
// balanced by a matching free on every return path, and must execute
// while the owning obs span is open so per-phase bytes_delta
// aggregates stay truthful (PR 6 shipped with every phase's delta
// silently zero because charges ran between spans).
//
// Both rules are interprocedural, built on the summary facts of
// internal/analysis/summary:
//
//   - Balance: charge tokens flow through the ledger dataflow
//     (summary.AnalyzeLedger). A call to an acquiring helper
//     (ChargesNet — acquireDecode and friends) pushes a token tied to
//     the assigned variable; a call to a releasing helper (Releases —
//     releaseDecode, mineRoot) pops the tokens tied to its arguments;
//     deferred frees apply at every exit. A token outstanding on only
//     SOME exit paths is a missing release on the others and is
//     reported at the charge. A token outstanding on ALL paths is a
//     deliberate shape — a tracker wrapper or an acquire constructor —
//     recorded in the caller-facing summary instead, so the obligation
//     is checked where it actually lands.
//
//   - Attribution: inside a function that starts obs spans, a positive
//     charge (direct, or hidden in a callee whose summary says
//     Charges) reached while no span is open is reported — the exact
//     PR-6 bug class.
//
// Function literals are independent scopes; a literal that starts no
// spans has no attribution obligation of its own.
package ledgerbalance

import (
	"go/ast"

	"cfpgrowth/internal/analysis"
	"cfpgrowth/internal/analysis/summary"
)

// Analyzer is the ledgerbalance rule. The driver scopes it to the
// mining packages that charge the ledger (internal/core, internal/pfp,
// internal/fptree, internal/algo); the ledger implementations
// themselves (internal/mine, internal/obs) are exempt — their
// wrapper methods are the vocabulary, not call sites.
var Analyzer = &analysis.Analyzer{
	Name: "ledgerbalance",
	Doc: `requires every modeled-byte ledger charge to be released on all
return paths (following callee summaries: acquire helpers push the
obligation to their caller, release helpers discharge it) and to
execute inside an open obs span in span-using functions, so budget
enforcement and per-phase bytes_delta reporting both stay truthful`,
	Requires:  []*analysis.Analyzer{summary.Analyzer},
	FactTypes: []analysis.Fact{new(summary.Effects)},
	Run:       run,
}

func run(pass *analysis.Pass) error {
	lookup := summary.Lookuper(pass)
	for _, fd := range pass.FuncDecls() {
		for _, body := range scopes(fd.Body) {
			check(pass, body, lookup)
		}
	}
	return nil
}

// scopes returns root plus the body of every nested function literal,
// each analyzed independently.
func scopes(root *ast.BlockStmt) []*ast.BlockStmt {
	out := []*ast.BlockStmt{root}
	ast.Inspect(root, func(n ast.Node) bool {
		if fl, ok := n.(*ast.FuncLit); ok && fl.Body != nil {
			out = append(out, fl.Body)
		}
		return true
	})
	return out
}

func check(pass *analysis.Pass, body *ast.BlockStmt, lookup summary.Lookup) {
	li := summary.AnalyzeLedger(pass.TypesInfo, body, lookup)
	for _, l := range li.Leaks {
		if l.AllPaths || l.Returned {
			// Wrapper/acquire shape: the obligation moves to the caller
			// through the ChargesNet summary and is checked there.
			continue
		}
		if l.Tok.FromCallee {
			pass.Reportf(l.Tok.Pos, "ledger charge acquired by %s is not released on every return path (an early return skips the releasing call); release it on each path or defer the release", l.Tok.Key)
		} else {
			pass.Reportf(l.Tok.Pos, "ledger charge is not released on every return path (an early return skips the Free); call Free before each return or defer it")
		}
	}
	for _, b := range li.Bares {
		if b.Via != nil {
			pass.Reportf(b.Pos, "call to %s charges the ledger outside any open obs span, so the charged bytes vanish from every phase's bytes_delta; move the call inside the owning span", b.Via.Name())
		} else {
			pass.Reportf(b.Pos, "ledger charge executes outside any open obs span, so the charged bytes vanish from every phase's bytes_delta; move the charge inside the owning span")
		}
	}
}
