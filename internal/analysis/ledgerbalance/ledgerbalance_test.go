package ledgerbalance_test

import (
	"testing"

	"cfpgrowth/internal/analysis"
	"cfpgrowth/internal/analysis/ledgerbalance"
)

func TestLedger(t *testing.T) {
	analysis.RunFixture(t, ledgerbalance.Analyzer, "testdata/ledger")
}
