package analysis

import (
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"testing"
)

// RunFixture type-checks the fixture package in dir (all non-test .go
// files, typically under testdata/), runs analyzer a on it, and
// compares the diagnostics against the fixture's expectations — the
// analysistest convention:
//
//	b[0] = 0xFF // want `magic 0xFF`
//
// Every `want` regexp must be matched by a diagnostic on its line, and
// every diagnostic must be claimed by a want. Fixtures may exercise
// //cfplint:ignore directives; suppressed diagnostics need no want,
// and a fixture directive is exempt from the stale-directive check
// only through a want of its own.
//
// Fixture files import real module packages (e.g.
// cfpgrowth/internal/mine); they resolve through the source importer's
// module-aware lookup, so fixtures exercise the same object-identity
// checks as production runs.
func RunFixture(t *testing.T, a *Analyzer, dir string) {
	t.Helper()
	pkg, err := LoadFixture(dir)
	if err != nil {
		t.Fatal(err)
	}
	findings, err := Run(pkg, []*Analyzer{a})
	if err != nil {
		t.Fatal(err)
	}
	checkWants(t, pkg, findings)
}

// LoadFixture parses and type-checks the single package rooted at dir.
func LoadFixture(dir string) (*Package, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	var files []*ast.File
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") || strings.HasSuffix(e.Name(), "_test.go") {
			continue
		}
		f, err := parser.ParseFile(fset, filepath.Join(dir, e.Name()), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	info := NewTypesInfo()
	conf := types.Config{Importer: importer.ForCompiler(fset, "source", nil)}
	tpkg, err := conf.Check("fixture", fset, files, info)
	if err != nil {
		return nil, err
	}
	return &Package{ImportPath: "fixture", Dir: dir, Fset: fset, Files: files, Types: tpkg, TypesInfo: info}, nil
}

// wantRe extracts the quoted regexps of a want comment. Both `...`
// and "..." quoting are accepted; several quoted regexps on one want
// line expect several diagnostics on that line; an optional column
// prefix pins the diagnostic's column:
//
//	b[0] = 0xFF // want `magic 0xFF` 9:`second diagnostic at col 9`
var wantRe = regexp.MustCompile("// *want *((?:(?:[0-9]+:)?(?:`[^`]*`|\"(?:[^\"\\\\]|\\\\.)*\") *)+)")

var wantArgRe = regexp.MustCompile("([0-9]+:)?(`[^`]*`|\"(?:[^\"\\\\]|\\\\.)*\")")

type want struct {
	file string
	line int
	col  int // 0 = any column
	re   *regexp.Regexp
	hit  bool
}

// checkWants cross-checks findings against want comments.
func checkWants(t *testing.T, pkg *Package, findings []Finding) {
	t.Helper()
	var wants []*want
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRe.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := pkg.Fset.Position(c.Slash)
				for _, arg := range wantArgRe.FindAllStringSubmatch(m[1], -1) {
					col := 0
					if arg[1] != "" {
						col, _ = strconv.Atoi(strings.TrimSuffix(arg[1], ":"))
					}
					q := arg[2]
					var pat string
					if q[0] == '`' {
						pat = q[1 : len(q)-1]
					} else {
						var err error
						pat, err = strconv.Unquote(q)
						if err != nil {
							t.Fatalf("%s: bad want string %s: %v", pos, q, err)
						}
					}
					re, err := regexp.Compile(pat)
					if err != nil {
						t.Fatalf("%s: bad want regexp %q: %v", pos, pat, err)
					}
					wants = append(wants, &want{file: pos.Filename, line: pos.Line, col: col, re: re})
				}
			}
		}
	}
	sort.Slice(wants, func(i, j int) bool {
		if wants[i].file != wants[j].file {
			return wants[i].file < wants[j].file
		}
		return wants[i].line < wants[j].line
	})
	for _, f := range findings {
		matched := false
		for _, w := range wants {
			if !w.hit && w.file == f.Pos.Filename && w.line == f.Pos.Line &&
				(w.col == 0 || w.col == f.Pos.Column) && w.re.MatchString(f.Message) {
				w.hit = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("unexpected diagnostic: %s", f)
		}
	}
	for _, w := range wants {
		if !w.hit {
			if w.col != 0 {
				t.Errorf("%s:%d: no diagnostic at column %d matching %q", w.file, w.line, w.col, w.re)
				continue
			}
			t.Errorf("%s:%d: no diagnostic matching %q", w.file, w.line, w.re)
		}
	}
}
