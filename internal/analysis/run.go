package analysis

import (
	"fmt"
	"go/token"
	"regexp"
	"sort"
	"strings"
	"time"
)

// A Finding is one resolved diagnostic: a position, the analyzer that
// produced it, and the message. Diagnostics suppressed by an ignore
// directive are dropped before they become Findings.
type Finding struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

func (f Finding) String() string {
	return fmt.Sprintf("%s: %s [%s]", f.Pos, f.Message, f.Analyzer)
}

// ignoreRe matches a suppression directive. The reason group is what
// makes a suppression auditable; it must be non-empty.
var ignoreRe = regexp.MustCompile(`^//cfplint:ignore\s+([A-Za-z0-9_,]+)\s*(.*)$`)

// directive is one parsed //cfplint:ignore comment.
type directive struct {
	names  map[string]bool
	reason string
	pos    token.Position
	used   bool
}

// covers reports whether the directive suppresses a diagnostic of the
// named analyzer at pos: same file, on the flagged line or the line
// directly above it.
func (d *directive) covers(name string, pos token.Position) bool {
	return d.names[name] && d.reason != "" && d.pos.Filename == pos.Filename &&
		(d.pos.Line == pos.Line || d.pos.Line == pos.Line-1)
}

// Run applies analyzers to pkg and returns the surviving findings
// sorted by position. Directive problems (a missing reason, a
// directive that suppressed nothing) are reported as findings of the
// pseudo-analyzer "cfplint" so that stale suppressions rot loudly, not
// silently. Each call uses a fresh fact store; drivers analyzing many
// packages should thread one store through RunWithFacts in dependency
// order so cross-package facts flow.
func Run(pkg *Package, analyzers []*Analyzer) ([]Finding, error) {
	return RunWithFacts(pkg, analyzers, NewFactStore())
}

// RunWithFacts is Run with a caller-owned fact store: facts exported
// while analyzing earlier packages (the dependencies) are visible to
// analyzers of later ones. The analyzer list is expanded with the
// transitive Requires closure and topologically sorted so producers
// run before consumers.
func RunWithFacts(pkg *Package, analyzers []*Analyzer, facts *FactStore) ([]Finding, error) {
	findings, _, err := RunWithFactsTimed(pkg, analyzers, facts)
	return findings, err
}

// RunWithFactsTimed is RunWithFacts reporting, additionally, how much
// wall time each analyzer's Run spent on this package (keyed by
// analyzer name, Requires-expanded entries included). Drivers
// accumulate these across packages into the per-analyzer timing
// breakdown of the -json artifact.
func RunWithFactsTimed(pkg *Package, analyzers []*Analyzer, facts *FactStore) ([]Finding, map[string]time.Duration, error) {
	analyzers, err := expand(analyzers)
	if err != nil {
		return nil, nil, err
	}
	dirs := collectDirectives(pkg)
	var findings []Finding
	timings := make(map[string]time.Duration, len(analyzers))
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer:  a,
			Fset:      pkg.Fset,
			Files:     pkg.Files,
			Pkg:       pkg.Types,
			TypesInfo: pkg.TypesInfo,
			facts:     facts,
		}
		name := a.Name
		pass.report = func(d Diagnostic) {
			pos := pkg.Fset.Position(d.Pos)
			for _, dir := range dirs {
				if dir.covers(name, pos) {
					dir.used = true
					return
				}
			}
			findings = append(findings, Finding{Analyzer: name, Pos: pos, Message: d.Message})
		}
		start := time.Now()
		err := a.Run(pass)
		timings[name] += time.Since(start)
		if err != nil {
			return nil, nil, fmt.Errorf("analysis: %s on %s: %v", a.Name, pkg.ImportPath, err)
		}
	}
	known := make(map[string]bool, len(analyzers))
	for _, a := range analyzers {
		known[a.Name] = true
	}
	for _, d := range dirs {
		switch {
		case d.reason == "":
			findings = append(findings, Finding{
				Analyzer: "cfplint",
				Pos:      d.pos,
				Message:  "//cfplint:ignore directive without a reason",
			})
		case !d.used && anyKnown(d.names, known):
			findings = append(findings, Finding{
				Analyzer: "cfplint",
				Pos:      d.pos,
				Message:  "//cfplint:ignore directive suppresses nothing (stale?)",
			})
		}
	}
	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i].Pos, findings[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		return a.Column < b.Column
	})
	return findings, timings, nil
}

// expand returns the transitive Requires closure of analyzers in
// topological order (dependencies first), preserving the relative
// order of independent entries. A Requires cycle is an error.
func expand(analyzers []*Analyzer) ([]*Analyzer, error) {
	var out []*Analyzer
	state := make(map[*Analyzer]int) // 0 unvisited, 1 visiting, 2 done
	var visit func(a *Analyzer) error
	visit = func(a *Analyzer) error {
		switch state[a] {
		case 1:
			return fmt.Errorf("analysis: Requires cycle through %s", a.Name)
		case 2:
			return nil
		}
		state[a] = 1
		for _, dep := range a.Requires {
			if err := visit(dep); err != nil {
				return err
			}
		}
		state[a] = 2
		out = append(out, a)
		return nil
	}
	for _, a := range analyzers {
		if err := visit(a); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// anyKnown reports whether the directive names at least one analyzer of
// the current run; directives for analyzers that did not run are left
// alone rather than flagged as stale.
func anyKnown(names, known map[string]bool) bool {
	for n := range names {
		if known[n] {
			return true
		}
	}
	return false
}

// collectDirectives parses every //cfplint:ignore comment in pkg.
func collectDirectives(pkg *Package) []*directive {
	var out []*directive
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := ignoreRe.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				d := &directive{
					names:  make(map[string]bool),
					reason: strings.TrimSpace(m[2]),
					pos:    pkg.Fset.Position(c.Slash),
				}
				for _, n := range strings.Split(m[1], ",") {
					d.names[n] = true
				}
				out = append(out, d)
			}
		}
	}
	return out
}
