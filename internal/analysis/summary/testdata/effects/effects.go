// Package effects exercises the summary computation: each function's
// want comment states the effect set the probe analyzer must report.
package effects

import (
	"sync"

	"cfpgrowth/internal/mine"
	"cfpgrowth/internal/obs"
)

type thing struct{ n int }

// A bare charge with no balancing free: the caller inherits the
// obligation (tracker-wrapper shape).
func chargeOnly(t mine.MemTracker) { // want `effects: chargesNet charges$`
	t.Alloc(64)
}

// Charge and free on the same path: no net effect toward the caller,
// but the charge itself is uncovered by any span.
func balanced(t mine.MemTracker) { // want `effects: charges$`
	t.Alloc(64)
	t.Free(64)
}

// A free with no local charge balances the caller's token.
func release(t mine.MemTracker, n int64) { // want `effects: releases$`
	t.Free(n)
}

// Acquire shape: charges and hands the resource out.
func acquire(t mine.MemTracker) *thing { // want `effects: chargesNet charges$`
	th := &thing{}
	t.Alloc(128)
	return th
}

// A charge covered by a span the function opens itself carries no
// obligation outward.
func spanCovered(r *obs.Recorder, t mine.MemTracker) { // want `effects: none$`
	sp := r.Start("work")
	t.Alloc(9)
	t.Free(9)
	sp.End()
}

// The PR-6 shape: the span is closed before the charge runs, so the
// charge is bare even though the function uses spans.
func spanBare(r *obs.Recorder, t mine.MemTracker) { // want `effects: charges$`
	sp := r.Start("work")
	sp.End()
	t.Alloc(9)
	t.Free(9)
}

func spawn() { // want `effects: spawns$`
	go func() {}()
}

func spawnVia() { // want `effects: spawns$`
	spawn()
}

func emit(s mine.Sink) error { // want `effects: emitsSink$`
	return s.Emit(nil, 1)
}

// A call through a plain function value is genuinely unknown.
func dyn(f func()) { // want `effects: dynamic$`
	f()
}

func emitVia(s mine.Sink) error { // want `effects: emitsSink$`
	return emit(s)
}

func scribble(th *thing) { // want `effects: writes\(0x1\)$`
	th.n = 7
}

func scribbleVia(th *thing) { // want `effects: writes\(0x1\)$`
	scribble(th)
}

func (th *thing) poke() { // want `effects: writes\(0x1\)$`
	th.n++
}

// Rebinding the parameter variable itself is not a write through it.
func rebind(th *thing) { // want `effects: none$`
	th = &thing{}
	_ = th
}

func idx(b []byte, i int) byte { // want `effects: unbounded\(0x2\)$`
	return b[i]
}

func idxChecked(b []byte, i int) byte { // want `effects: none$`
	if i < len(b) {
		return b[i]
	}
	return 0
}

func idxVia(b []byte, i int) byte { // want `effects: unbounded\(0x2\)$`
	return idx(b, i)
}

func pget(p *sync.Pool) *thing { // want `effects: getsPooled$`
	return p.Get().(*thing)
}

func pgetVia(p *sync.Pool) *thing { // want `effects: getsPooled$`
	th := pget(p)
	return th
}

func pput(p *sync.Pool, th *thing) { // want `effects: puts\(0x2\)$`
	p.Put(th)
}

func pputVia(p *sync.Pool, th *thing) { // want `effects: puts\(0x2\)$`
	pput(p, th)
}

// Mutual recursion converges to the union of both bodies' effects.
func pingPong(t mine.MemTracker, depth int) { // want `effects: spawns$`
	if depth == 0 {
		return
	}
	pong(t, depth-1)
}

func pong(t mine.MemTracker, depth int) { // want `effects: spawns$`
	go func() {}()
	pingPong(t, depth)
}
