// Package summary computes an interprocedural effect summary per
// declared function and publishes it as a fact, so downstream
// analyzers compose across function and package boundaries instead of
// pattern-matching inside a single body.
//
// The computation is bottom-up over the package call graph
// (internal/analysis/callgraph): strongly connected components in
// callees-first order, iterating each cycle to a fixpoint (all effect
// domains are finite and monotone). Calls into already-analyzed
// packages resolve through the fact store — the driver analyzes
// packages in dependency order, so a callee's summary is present
// before any caller is reached. Unresolved dynamic calls (function
// values, interface dispatch) are ⊤: the summary records their
// presence in Dynamic and otherwise assumes them effect-free, a
// documented unsoundness that keeps the mining code's two interface
// shapes (sinks, trackers) from drowning every caller in noise — both
// shapes are matched structurally instead.
//
// Effect domains, chosen for the analyzers that consume them:
//
//   - ledger effects (ledgerbalance): does the function hand its
//     caller a net modeled-byte charge (ChargesNet: acquire helpers,
//     tracker wrappers), balance a caller-held charge (Releases), or
//     perform a charge no obs span of its own covers (Charges — the
//     obligation a span-using caller must wrap, the PR-6 bug class)?
//   - pool effects (poolreturn): does it hand out a pooled value
//     (GetsPooled) or return parameter slots to a pool (PutsParams)?
//   - concurrency effects (goroutinesafe): does it spawn goroutines?
//   - escape effects (sharedro, varintbounds): which parameter slots
//     may it write through (WritesParams), which integer slots does it
//     use as an index or size without a bound check (UnboundedIndex)?
//   - sink effects (sinkguard, lockorder): may it emit a result
//     (EmitsSink), directly or through a helper?
//
// Parameter slots: slot 0 is the receiver for methods, with parameters
// shifted by one; plain functions use parameter order directly.
// ArgExprs maps a call site's expressions to slots the same way.
package summary

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"cfpgrowth/internal/analysis"
	"cfpgrowth/internal/analysis/callgraph"
)

// Effects is the per-function summary fact.
type Effects struct {
	// ChargesNet: every return path (or the returned-resource paths)
	// leaves a positive ledger charge for the caller to balance.
	ChargesNet bool
	// Releases: performs a ledger free that matches no charge of its
	// own — it balances a token held by the caller.
	Releases bool
	// Charges: performs a positive charge not covered by an obs span
	// the function itself opened; span-using callers must cover the
	// call site.
	Charges bool
	// GetsPooled: returns a value obtained from a sync.Pool.
	GetsPooled bool
	// PutsParams: bit i set when parameter slot i is handed to a
	// sync.Pool.Put (directly or via a callee).
	PutsParams uint32
	// WritesParams: bit i set when memory reachable from parameter
	// slot i may be written (field/element/pointee stores, transitive).
	WritesParams uint32
	// UnboundedIndex: bit i set when integer parameter slot i is used
	// as an index, slice bound, or make size with no comparison
	// guarding it in the function.
	UnboundedIndex uint32
	// Spawns: starts a goroutine, directly or via a callee.
	Spawns bool
	// EmitsSink: may call a result-sink Emit, directly or via a callee.
	EmitsSink bool
	// Dynamic: contains unresolved dynamic call sites (⊤); consumers
	// needing soundness treat the function as unknown.
	Dynamic bool
}

// AFact marks Effects as a fact type.
func (*Effects) AFact() {}

// String renders the set effects compactly ("chargesNet charges
// writes(0x1)"), or "none"; used by tests and -debug output.
func (e *Effects) String() string {
	var parts []string
	if e.ChargesNet {
		parts = append(parts, "chargesNet")
	}
	if e.Releases {
		parts = append(parts, "releases")
	}
	if e.Charges {
		parts = append(parts, "charges")
	}
	if e.GetsPooled {
		parts = append(parts, "getsPooled")
	}
	if e.PutsParams != 0 {
		parts = append(parts, fmt.Sprintf("puts(%#x)", e.PutsParams))
	}
	if e.WritesParams != 0 {
		parts = append(parts, fmt.Sprintf("writes(%#x)", e.WritesParams))
	}
	if e.UnboundedIndex != 0 {
		parts = append(parts, fmt.Sprintf("unbounded(%#x)", e.UnboundedIndex))
	}
	if e.Spawns {
		parts = append(parts, "spawns")
	}
	if e.EmitsSink {
		parts = append(parts, "emitsSink")
	}
	if e.Dynamic {
		parts = append(parts, "dynamic")
	}
	if len(parts) == 0 {
		return "none"
	}
	return strings.Join(parts, " ")
}

// Analyzer computes and exports Effects for every declared function of
// the package. It reports nothing; it exists to be required.
var Analyzer = &analysis.Analyzer{
	Name: "summary",
	Doc: `computes per-function effect summaries (ledger delta, pool
balance, goroutine spawns, parameter writes, sink emissions) bottom-up
over the package call graph and publishes them as facts for the
interprocedural analyzers (ledgerbalance, poolreturn, goroutinesafe,
sharedro) and the summary-consuming rewirings of sinkguard, lockorder
and varintbounds`,
	FactTypes: []analysis.Fact{new(Effects)},
	Run:       run,
}

// maxSlots caps the parameter bitmasks.
const maxSlots = 32

func run(pass *analysis.Pass) error {
	g := callgraph.New(pass.Files, pass.TypesInfo)
	local := make(map[*types.Func]*Effects)
	lookup := func(fn *types.Func) *Effects {
		if e, ok := local[fn]; ok {
			return e
		}
		var e Effects
		if pass.ImportObjectFact(fn, &e) {
			return &e
		}
		return nil
	}
	for _, comp := range g.SCCs() {
		for _, n := range comp {
			local[n.Fn] = &Effects{}
		}
		for changed := true; changed; {
			changed = false
			for _, n := range comp {
				ne := compute(pass, n, lookup)
				if *local[n.Fn] != *ne {
					local[n.Fn] = ne
					changed = true
				}
			}
		}
	}
	for fn, eff := range local {
		pass.ExportObjectFact(fn, eff)
	}
	return nil
}

// Lookuper returns a Lookup over the facts visible to pass; consumers
// that Require Analyzer use it to resolve callee summaries (same
// package and imported packages alike).
func Lookuper(pass *analysis.Pass) Lookup {
	return func(fn *types.Func) *Effects {
		if fn == nil {
			return nil
		}
		var e Effects
		if pass.ImportObjectFact(fn, &e) {
			return &e
		}
		return nil
	}
}

// compute derives the effects of one declaration given the current
// summaries of everything it calls.
func compute(pass *analysis.Pass, n *callgraph.Node, lookup Lookup) *Effects {
	info := pass.TypesInfo
	eff := &Effects{}

	// Interface dispatch whose shape the framework recognizes (ledger
	// ops, sink emissions) is modeled, not ⊤; only truly unknown call
	// sites make the function Dynamic.
	modeled := map[token.Pos]bool{}
	for _, c := range n.Calls {
		if !c.Interface {
			continue
		}
		if op, _ := ledgerOp(info, c.Site); op != opNone || isSinkEmit(c.Callee) {
			modeled[c.Site.Pos()] = true
		}
	}
	for _, pos := range n.Dynamic {
		if !modeled[pos] {
			eff.Dynamic = true
		}
	}

	li := AnalyzeLedger(info, n.Decl.Body, lookup)
	eff.Charges = li.Charges
	eff.Releases = li.Releases
	for _, l := range li.Leaks {
		if l.AllPaths || l.Returned {
			eff.ChargesNet = true
		}
	}

	slots := paramSlots(info, n.Decl)

	// Spawns: any go statement in the body (literals included — the
	// spawn happens within this function's machinery) or a spawning
	// callee.
	ast.Inspect(n.Decl.Body, func(m ast.Node) bool {
		if _, ok := m.(*ast.GoStmt); ok {
			eff.Spawns = true
		}
		return !eff.Spawns
	})

	// Direct writes through parameters and unbounded index uses.
	bounded := comparedObjs(info, n.Decl.Body)
	ast.Inspect(n.Decl.Body, func(m ast.Node) bool {
		switch m := m.(type) {
		case *ast.AssignStmt:
			for _, lhs := range m.Lhs {
				if slot, ok := writeTarget(info, slots, lhs); ok {
					eff.WritesParams |= 1 << slot
				}
			}
		case *ast.IncDecStmt:
			if slot, ok := writeTarget(info, slots, m.X); ok {
				eff.WritesParams |= 1 << slot
			}
		case *ast.CallExpr:
			if id, ok := ast.Unparen(m.Fun).(*ast.Ident); ok && len(m.Args) > 0 {
				if b, ok := info.Uses[id].(*types.Builtin); ok && b.Name() == "copy" {
					if slot, ok := rootSlot(info, slots, m.Args[0], true); ok {
						eff.WritesParams |= 1 << slot
					}
				}
			}
		case *ast.IndexExpr:
			if slot, ok := rootSlot(info, slots, m.Index, false); ok && !bounded[identObj(info, m.Index)] {
				eff.UnboundedIndex |= 1 << slot
			}
		case *ast.SliceExpr:
			for _, b := range []ast.Expr{m.Low, m.High, m.Max} {
				if b == nil {
					continue
				}
				if slot, ok := rootSlot(info, slots, b, false); ok && !bounded[identObj(info, b)] {
					eff.UnboundedIndex |= 1 << slot
				}
			}
		}
		return true
	})

	// Call-mediated effects.
	for _, c := range n.Calls {
		fn := c.Callee
		if isSinkEmit(fn) {
			eff.EmitsSink = true
		}
		if c.Interface {
			continue
		}
		args := ArgExprs(c.Site, fn)
		if isPoolMethod(fn, "Put") && len(c.Site.Args) == 1 {
			if slot, ok := rootSlot(info, slots, c.Site.Args[0], false); ok {
				eff.PutsParams |= 1 << slot
			}
		}
		ce := lookup(fn)
		if ce == nil {
			continue
		}
		if ce.Spawns {
			eff.Spawns = true
		}
		if ce.EmitsSink {
			eff.EmitsSink = true
		}
		for i, a := range args {
			if a == nil || i >= maxSlots {
				continue
			}
			slot, ok := rootSlot(info, slots, a, false)
			if !ok {
				continue
			}
			if ce.WritesParams&(1<<i) != 0 {
				eff.WritesParams |= 1 << slot
			}
			if ce.PutsParams&(1<<i) != 0 {
				eff.PutsParams |= 1 << slot
			}
			if ce.UnboundedIndex&(1<<i) != 0 && !bounded[identObj(info, a)] {
				eff.UnboundedIndex |= 1 << slot
			}
		}
	}

	eff.GetsPooled = returnsPooled(info, n, lookup)
	return eff
}

// paramSlots maps the declaration's receiver and parameter objects to
// slot indexes.
func paramSlots(info *types.Info, fd *ast.FuncDecl) map[types.Object]int {
	slots := map[types.Object]int{}
	next := 0
	add := func(fields *ast.FieldList) {
		if fields == nil {
			return
		}
		for _, f := range fields.List {
			if len(f.Names) == 0 {
				next++
				continue
			}
			for _, name := range f.Names {
				if obj := info.Defs[name]; obj != nil && next < maxSlots {
					slots[obj] = next
				}
				next++
			}
		}
	}
	add(fd.Recv)
	add(fd.Type.Params)
	return slots
}

// ArgExprs returns the call's expressions by parameter slot for callee
// fn: the receiver expression first for methods, then the arguments.
// Entries may be nil (method values); variadic overflow arguments all
// map to the final slot's position or beyond and are simply appended.
func ArgExprs(call *ast.CallExpr, fn *types.Func) []ast.Expr {
	var out []ast.Expr
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
			out = append(out, sel.X)
		} else {
			out = append(out, nil)
		}
	}
	return append(out, call.Args...)
}

// writeTarget reports the parameter slot written through by an
// assignment to lhs: a field, element, or pointee rooted at a
// parameter. A plain rebind of the parameter variable itself is not a
// write through it.
func writeTarget(info *types.Info, slots map[types.Object]int, lhs ast.Expr) (int, bool) {
	if _, ok := ast.Unparen(lhs).(*ast.Ident); ok {
		return 0, false
	}
	return rootSlot(info, slots, lhs, true)
}

// rootSlot resolves the base variable of an expression to its
// parameter slot. With chase set, selector/index/star/paren chains are
// followed to their root; otherwise only a bare identifier matches.
func rootSlot(info *types.Info, slots map[types.Object]int, e ast.Expr, chase bool) (int, bool) {
	for {
		e = ast.Unparen(e)
		switch x := e.(type) {
		case *ast.Ident:
			obj := info.Uses[x]
			if obj == nil {
				return 0, false
			}
			slot, ok := slots[obj]
			return slot, ok
		case *ast.SelectorExpr:
			if !chase {
				return 0, false
			}
			// A package-qualified name has no root variable.
			if id, ok := x.X.(*ast.Ident); ok {
				if _, isPkg := info.Uses[id].(*types.PkgName); isPkg {
					return 0, false
				}
			}
			e = x.X
		case *ast.IndexExpr:
			if !chase {
				return 0, false
			}
			e = x.X
		case *ast.StarExpr:
			if !chase {
				return 0, false
			}
			e = x.X
		case *ast.UnaryExpr:
			if !chase {
				return 0, false
			}
			e = x.X
		default:
			return 0, false
		}
	}
}

// comparedObjs collects every variable appearing in a comparison —
// the (deliberately coarse) "a bound check exists" signal for
// UnboundedIndex.
func comparedObjs(info *types.Info, body *ast.BlockStmt) map[types.Object]bool {
	out := map[types.Object]bool{}
	ast.Inspect(body, func(n ast.Node) bool {
		be, ok := n.(*ast.BinaryExpr)
		if !ok || !be.Op.IsOperator() {
			return true
		}
		switch be.Op.String() {
		case "<", "<=", ">", ">=", "==", "!=":
			for _, side := range []ast.Expr{be.X, be.Y} {
				if obj := identObj(info, side); obj != nil {
					out[obj] = true
				}
			}
		}
		return true
	})
	return out
}

// returnsPooled reports whether some return path hands out a value
// obtained from a sync.Pool (directly, through a type assertion, or
// via a GetsPooled callee).
func returnsPooled(info *types.Info, n *callgraph.Node, lookup Lookup) bool {
	pooled := map[types.Object]bool{}
	isGet := func(e ast.Expr) bool {
		call, ok := ast.Unparen(e).(*ast.CallExpr)
		if !ok {
			if ta, ok := ast.Unparen(e).(*ast.TypeAssertExpr); ok {
				call, ok = ast.Unparen(ta.X).(*ast.CallExpr)
				if !ok {
					return false
				}
			} else {
				return false
			}
		}
		fn := analysis.Callee(info, call)
		if fn == nil {
			return false
		}
		if isPoolMethod(fn, "Get") {
			return true
		}
		ce := lookup(fn)
		return ce != nil && ce.GetsPooled
	}
	ast.Inspect(n.Decl.Body, func(m ast.Node) bool {
		if as, ok := m.(*ast.AssignStmt); ok && len(as.Lhs) == len(as.Rhs) {
			for i, rhs := range as.Rhs {
				if isGet(rhs) {
					if obj := identObj(info, as.Lhs[i]); obj != nil {
						pooled[obj] = true
					}
				}
			}
		}
		return true
	})
	found := false
	ast.Inspect(n.Decl.Body, func(m ast.Node) bool {
		ret, ok := m.(*ast.ReturnStmt)
		if !ok {
			return !found
		}
		for _, r := range ret.Results {
			if isGet(r) {
				found = true
			}
			if obj := identObj(info, r); obj != nil && pooled[obj] {
				found = true
			}
		}
		return !found
	})
	return found
}

// isPoolMethod reports whether fn is (*sync.Pool).name.
func isPoolMethod(fn *types.Func, name string) bool {
	return fn != nil && fn.Name() == name && hasRecv(fn, "sync", "Pool")
}

// isSinkEmit reports whether fn is a result-sink emission: a method
// named Emit with signature func([]uint32, uint64) error, the shape of
// mine.Sink and every wrapper in the repo.
func isSinkEmit(fn *types.Func) bool {
	if fn == nil || fn.Name() != "Emit" {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil || sig.Params().Len() != 2 || sig.Results().Len() != 1 {
		return false
	}
	p0, ok := sig.Params().At(0).Type().Underlying().(*types.Slice)
	if !ok {
		return false
	}
	b0, ok := p0.Elem().Underlying().(*types.Basic)
	if !ok || b0.Kind() != types.Uint32 {
		return false
	}
	b1, ok := sig.Params().At(1).Type().Underlying().(*types.Basic)
	if !ok || b1.Kind() != types.Uint64 {
		return false
	}
	named, ok := sig.Results().At(0).Type().(*types.Named)
	return ok && named.Obj().Name() == "error" && named.Obj().Pkg() == nil
}
