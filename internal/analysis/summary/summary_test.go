package summary_test

import (
	"go/types"
	"testing"

	"cfpgrowth/internal/analysis"
	"cfpgrowth/internal/analysis/summary"
)

// probe reports every declared function's computed Effects as a
// diagnostic, so the fixture's want comments check the summary
// computation end to end (facts included).
var probe = &analysis.Analyzer{
	Name:      "summaryprobe",
	Doc:       "test probe: reports each function's Effects summary",
	Requires:  []*analysis.Analyzer{summary.Analyzer},
	FactTypes: []analysis.Fact{new(summary.Effects)},
	Run: func(pass *analysis.Pass) error {
		lookup := summary.Lookuper(pass)
		for _, fd := range pass.FuncDecls() {
			fn, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			if eff := lookup(fn); eff != nil {
				pass.Reportf(fd.Name.Pos(), "effects: %s", eff)
			}
		}
		return nil
	},
}

func TestEffects(t *testing.T) {
	analysis.RunFixture(t, probe, "testdata/effects")
}
