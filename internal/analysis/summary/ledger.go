package summary

import (
	"go/ast"
	"go/token"
	"go/types"

	"cfpgrowth/internal/analysis"
	"cfpgrowth/internal/analysis/cfg"
	"cfpgrowth/internal/analysis/dataflow"
)

// This file is the ledger-token dataflow shared by the summary
// computation and the ledgerbalance analyzer: a forward analysis over
// one scope (a function body or a function literal body) that tracks
// outstanding modeled-byte charges as tokens.
//
// A token is pushed by a direct charge (mine.Control.Charge,
// MemTracker.Alloc, obs.Recorder.Alloc — any single-int64 method named
// Alloc/Charge on a mine or obs type) or by a call to a function whose
// Effects summary says it hands a net charge to its caller
// (ChargesNet: acquireDecode and friends). A token is popped by a
// matching free — first by the exact text of the size expression
// (Alloc(treeBytes) ... Free(treeBytes)), then by object overlap
// (Alloc(d.Bytes()) ... a release helper taking d), and for
// callee-acquired tokens by a free on the same tracker. Deferred frees
// and deferred release-helpers apply at every exit.
//
// The analysis also tracks which obs spans are open (must-set) so that
// callers can enforce the PR-6 attribution rule: inside a function
// that starts spans, a positive charge must execute while a span is
// open, or the charged bytes vanish from every phase's bytes_delta.

const (
	minePath = "cfpgrowth/internal/mine"
	obsPath  = "cfpgrowth/internal/obs"
)

// A Token is one outstanding ledger charge.
type Token struct {
	// Pos is the charge site (the Alloc/Charge call, or the call to the
	// acquiring callee).
	Pos token.Pos
	// Key is the normalized text of the size expression, or of the whole
	// call for callee-acquired tokens.
	Key string
	// Objs are the variables tied to the token: those mentioned in the
	// size expression, the assigned result of an acquiring call, or the
	// arguments of one.
	Objs map[types.Object]bool
	// FromCallee marks a token pushed by a ChargesNet callee summary
	// rather than a direct charge.
	FromCallee bool
}

// A Leak is a token still outstanding at scope exit on some path.
type Leak struct {
	Tok Token
	// AllPaths reports whether the token is outstanding on every return
	// path (a charge wrapper or acquire shape, absolved into the
	// ChargesNet effect) as opposed to only some (a genuine
	// missing-release path).
	AllPaths bool
	// Returned reports whether a variable tied to the token is returned
	// on some path: ownership moves to the caller.
	Returned bool
}

// A Bare is one positive charge executed while no obs span was open,
// inside a scope that starts spans of its own (the PR-6 bug class).
type Bare struct {
	Pos token.Pos
	// Via is the callee whose summary carries the charge when the
	// charge is not a direct Alloc/Charge call at Pos.
	Via *types.Func
}

// ScopeInfo is the solved ledger analysis of one scope.
type ScopeInfo struct {
	// Leaks lists tokens outstanding at exit, deferred frees applied.
	Leaks []Leak
	// Bares lists uncovered charges; empty unless SpanUsing.
	Bares []Bare
	// SpanUsing reports whether the scope itself starts an obs span.
	SpanUsing bool
	// Charges reports a positive charge (direct or via a Charges
	// callee) at a point with no open span — the obligation a span-using
	// caller must cover.
	Charges bool
	// Releases reports a free not matched by any local token: the scope
	// balances a charge held by its caller.
	Releases bool
	// ExitReached is false for scopes that never return normally.
	ExitReached bool
}

// Lookup resolves the Effects summary of a callee, or nil when none is
// known (unanalyzed package, interface method, ⊤).
type Lookup func(*types.Func) *Effects

// ledgerState is the per-path dataflow state.
type ledgerState struct {
	may      map[token.Pos]*Token // outstanding on some path to here
	must     map[token.Pos]bool   // outstanding on every path to here
	returned map[token.Pos]bool   // tied variable returned on some path
	spans    map[types.Object]bool
	defObjs  map[types.Object]bool // deferred frees: released objects
	defKeys  map[string]bool       // deferred frees: released keys
}

type ledgerProblem struct {
	info      *types.Info
	lookup    Lookup
	spanUsing bool
	// bares accumulates uncovered charges as a side effect of Transfer;
	// dataflow may visit a block several times, so sites are deduped.
	bares map[token.Pos]*Bare
	// unmatched accumulates frees that popped nothing.
	unmatched map[token.Pos]bool
	// markCharges records an uncovered positive charge (→ Charges).
	markCharges bool
}

func (p *ledgerProblem) Entry() ledgerState {
	return ledgerState{
		may:      map[token.Pos]*Token{},
		must:     map[token.Pos]bool{},
		returned: map[token.Pos]bool{},
		spans:    map[types.Object]bool{},
		defObjs:  map[types.Object]bool{},
		defKeys:  map[string]bool{},
	}
}

func (p *ledgerProblem) Clone(s ledgerState) ledgerState {
	c := ledgerState{
		may:      make(map[token.Pos]*Token, len(s.may)),
		must:     make(map[token.Pos]bool, len(s.must)),
		returned: make(map[token.Pos]bool, len(s.returned)),
		spans:    make(map[types.Object]bool, len(s.spans)),
		defObjs:  make(map[types.Object]bool, len(s.defObjs)),
		defKeys:  make(map[string]bool, len(s.defKeys)),
	}
	for k, v := range s.may {
		c.may[k] = v
	}
	for k := range s.must {
		c.must[k] = true
	}
	for k := range s.returned {
		c.returned[k] = true
	}
	for k := range s.spans {
		c.spans[k] = true
	}
	for k := range s.defObjs {
		c.defObjs[k] = true
	}
	for k := range s.defKeys {
		c.defKeys[k] = true
	}
	return c
}

func (p *ledgerProblem) Join(a, b ledgerState) ledgerState {
	j := p.Clone(a)
	for k, v := range b.may {
		j.may[k] = v
	}
	for k := range j.must {
		if !b.must[k] {
			delete(j.must, k)
		}
	}
	for k := range b.returned {
		j.returned[k] = true
	}
	for k := range j.spans {
		if !b.spans[k] {
			delete(j.spans, k)
		}
	}
	for k := range j.defObjs {
		if !b.defObjs[k] {
			delete(j.defObjs, k)
		}
	}
	for k := range j.defKeys {
		if !b.defKeys[k] {
			delete(j.defKeys, k)
		}
	}
	return j
}

func (p *ledgerProblem) Equal(a, b ledgerState) bool {
	if len(a.may) != len(b.may) || len(a.must) != len(b.must) ||
		len(a.returned) != len(b.returned) || len(a.spans) != len(b.spans) ||
		len(a.defObjs) != len(b.defObjs) || len(a.defKeys) != len(b.defKeys) {
		return false
	}
	for k := range a.may {
		if _, ok := b.may[k]; !ok {
			return false
		}
	}
	for k := range a.must {
		if !b.must[k] {
			return false
		}
	}
	for k := range a.returned {
		if !b.returned[k] {
			return false
		}
	}
	for k := range a.spans {
		if !b.spans[k] {
			return false
		}
	}
	for k := range a.defObjs {
		if !b.defObjs[k] {
			return false
		}
	}
	for k := range a.defKeys {
		if !b.defKeys[k] {
			return false
		}
	}
	return true
}

func (p *ledgerProblem) Refine(s ledgerState, cond ast.Expr, taken bool) ledgerState { return s }

// Transfer mutates and returns s (the solver hands it a private copy).
func (p *ledgerProblem) Transfer(s ledgerState, n ast.Node) ledgerState {
	switch n := n.(type) {
	case *ast.AssignStmt:
		for i, rhs := range n.Rhs {
			var lhs ast.Expr
			if len(n.Lhs) == len(n.Rhs) {
				lhs = n.Lhs[i]
			}
			p.expr(s, rhs, lhs)
		}
		// A span variable overwritten by a non-Start value stops being
		// open (it can no longer be ended).
		for i, lhs := range n.Lhs {
			if obj := identObj(p.info, lhs); obj != nil && s.spans[obj] {
				if i >= len(n.Rhs) || startCall(p.info, n.Rhs[i]) == nil {
					delete(s.spans, obj)
				}
			}
		}
	case *ast.DeferStmt:
		p.deferCall(s, n.Call)
	case *ast.ReturnStmt:
		for _, r := range n.Results {
			p.expr(s, r, nil)
		}
		// Deferred frees run on this path's unwind: discharge them at
		// the return, per path, so a token and its defer stay correlated
		// instead of being torn apart by the exit-block join with paths
		// that returned before the defer was registered.
		applyDefers(s)
		for _, r := range n.Results {
			for _, obj := range varsIn(p.info, r) {
				for pos, tok := range s.may {
					if tok.Objs[obj] {
						s.returned[pos] = true
					}
				}
			}
		}
	default:
		p.walk(s, n)
	}
	return s
}

// walk applies every call in evaluation position inside n.
func (p *ledgerProblem) walk(s ledgerState, n ast.Node) {
	dataflow.Inspect(n, func(m ast.Node) bool {
		if call, ok := m.(*ast.CallExpr); ok {
			p.call(s, call, nil)
			return false // call handles its own argument subtree
		}
		return true
	})
}

// expr applies one RHS expression, binding acquired tokens to lhs.
func (p *ledgerProblem) expr(s ledgerState, rhs ast.Expr, lhs ast.Expr) {
	if call, ok := ast.Unparen(rhs).(*ast.CallExpr); ok {
		p.call(s, call, lhs)
		return
	}
	p.walk(s, rhs)
}

// call applies one call site: span open/close, direct charges and
// frees, then callee-summary effects. lhs, when non-nil, is the
// expression the call's (single) result is assigned to.
func (p *ledgerProblem) call(s ledgerState, call *ast.CallExpr, lhs ast.Expr) {
	// Nested calls in arguments evaluate first.
	for _, a := range call.Args {
		p.walk(s, a)
	}
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		p.walk(s, sel.X)
	}

	info := p.info
	fn := analysis.Callee(info, call)
	if fn == nil {
		return
	}
	if isRecorderStart(fn) {
		if obj := identObj(info, lhs); obj != nil {
			s.spans[obj] = true
		}
		return
	}
	if isSpanEnd(fn) {
		if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
			if obj := identObj(info, sel.X); obj != nil {
				delete(s.spans, obj)
			}
		}
		return
	}
	switch op, arg := ledgerOp(info, call); op {
	case opCharge:
		p.charge(s, call.Pos(), nil)
		tok := &Token{Pos: call.Pos(), Key: types.ExprString(arg), Objs: objSet(info, arg)}
		s.may[tok.Pos] = tok
		s.must[tok.Pos] = true
		return
	case opFree:
		p.free(s, call, arg)
		return
	}
	eff := p.lookup(fn)
	if eff == nil {
		return
	}
	if eff.Releases {
		p.popByArgs(s, call)
	}
	if eff.Charges {
		p.charge(s, call.Pos(), fn)
	}
	if eff.ChargesNet {
		objs := map[types.Object]bool{}
		if obj := identObj(info, lhs); obj != nil {
			objs[obj] = true
		} else {
			for _, a := range call.Args {
				for _, o := range varsIn(info, a) {
					objs[o] = true
				}
			}
			if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
				for _, o := range varsIn(info, sel.X) {
					objs[o] = true
				}
			}
		}
		tok := &Token{Pos: call.Pos(), Key: types.ExprString(call), Objs: objs, FromCallee: true}
		s.may[tok.Pos] = tok
		s.must[tok.Pos] = true
	}
}

// charge records a positive charge at pos; when the scope is
// span-using and no span is open on this path, it is a bare charge.
func (p *ledgerProblem) charge(s ledgerState, pos token.Pos, via *types.Func) {
	if p.spanUsing && len(s.spans) == 0 {
		if _, ok := p.bares[pos]; !ok {
			p.bares[pos] = &Bare{Pos: pos, Via: via}
		}
	}
	if !p.spanUsing || len(s.spans) == 0 {
		p.markCharges = true
	}
}

// free pops tokens matched by a direct Free/Release call.
func (p *ledgerProblem) free(s ledgerState, call *ast.CallExpr, arg ast.Expr) {
	key := types.ExprString(arg)
	if popKey(s, key) {
		return
	}
	argObjs := objSet(p.info, arg)
	if popObjs(s, argObjs, false) {
		return
	}
	// A callee-acquired token is released by any free on a tracker the
	// acquiring call could see.
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		if popObjs(s, objSet(p.info, sel.X), true) {
			return
		}
	}
	p.unmatched[call.Pos()] = true
}

// popByArgs pops tokens tied to any variable appearing in the call's
// arguments or receiver (the release-helper shape: releaseDecode(d)).
func (p *ledgerProblem) popByArgs(s ledgerState, call *ast.CallExpr) {
	objs := map[types.Object]bool{}
	for _, a := range call.Args {
		for _, o := range varsIn(p.info, a) {
			objs[o] = true
		}
	}
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		for _, o := range varsIn(p.info, sel.X) {
			objs[o] = true
		}
	}
	popObjs(s, objs, false)
}

func popKey(s ledgerState, key string) bool {
	hit := false
	for pos, tok := range s.may {
		if tok.Key == key {
			delete(s.may, pos)
			delete(s.must, pos)
			hit = true
		}
	}
	return hit
}

// popObjs pops tokens whose object set intersects objs;
// fromCalleeOnly restricts to callee-acquired tokens (the slack
// tracker-receiver match must not eat precisely keyed direct tokens).
func popObjs(s ledgerState, objs map[types.Object]bool, fromCalleeOnly bool) bool {
	hit := false
	for pos, tok := range s.may {
		if fromCalleeOnly && !tok.FromCallee {
			continue
		}
		for o := range objs {
			if tok.Objs[o] {
				delete(s.may, pos)
				delete(s.must, pos)
				hit = true
				break
			}
		}
	}
	return hit
}

// deferCall models a deferred call: frees and release-helpers apply at
// every exit of the scope; a deferred closure is scanned for the same.
func (p *ledgerProblem) deferCall(s ledgerState, call *ast.CallExpr) {
	info := p.info
	if lit, ok := ast.Unparen(call.Fun).(*ast.FuncLit); ok {
		ast.Inspect(lit.Body, func(n ast.Node) bool {
			if c, ok := n.(*ast.CallExpr); ok {
				p.deferCall(s, c)
			}
			return true
		})
		return
	}
	fn := analysis.Callee(info, call)
	if fn == nil {
		return
	}
	if op, arg := ledgerOp(info, call); op == opFree {
		s.defKeys[types.ExprString(arg)] = true
		for _, o := range varsIn(info, arg) {
			s.defObjs[o] = true
		}
		return
	}
	if eff := p.lookup(fn); eff != nil && eff.Releases {
		for _, a := range call.Args {
			for _, o := range varsIn(info, a) {
				s.defObjs[o] = true
			}
		}
		if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
			for _, o := range varsIn(info, sel.X) {
				s.defObjs[o] = true
			}
		}
	}
}

// AnalyzeLedger solves the ledger analysis of one scope. body is a
// function (or literal) body; lookup resolves callee summaries and may
// be nil early in a bottom-up pass.
func AnalyzeLedger(info *types.Info, body *ast.BlockStmt, lookup Lookup) *ScopeInfo {
	if lookup == nil {
		lookup = func(*types.Func) *Effects { return nil }
	}
	prob := &ledgerProblem{
		info:      info,
		lookup:    lookup,
		spanUsing: usesSpans(info, body),
		bares:     map[token.Pos]*Bare{},
		unmatched: map[token.Pos]bool{},
	}
	g := cfg.New(body)
	res := dataflow.Forward[ledgerState](g, prob)

	out := &ScopeInfo{
		SpanUsing:   prob.spanUsing,
		Charges:     prob.markCharges,
		Releases:    len(prob.unmatched) > 0,
		ExitReached: res.ExitReached,
	}
	for _, b := range prob.bares {
		out.Bares = append(out.Bares, *b)
	}
	if !res.ExitReached {
		return out
	}
	// Explicit returns discharged their defers in Transfer; the final
	// fall-through edge has no return statement, so apply its deferred
	// frees here.
	exit := prob.Clone(res.Exit)
	applyDefers(exit)
	for pos, tok := range exit.may {
		out.Leaks = append(out.Leaks, Leak{
			Tok:      *tok,
			AllPaths: exit.must[pos],
			Returned: exit.returned[pos],
		})
	}
	return out
}

// applyDefers pops every token discharged by the deferred frees
// registered on the current path.
func applyDefers(s ledgerState) {
	for pos, tok := range s.may {
		discharged := s.defKeys[tok.Key]
		if !discharged {
			for o := range tok.Objs {
				if s.defObjs[o] {
					discharged = true
					break
				}
			}
		}
		if discharged {
			delete(s.may, pos)
			delete(s.must, pos)
		}
	}
}

// usesSpans reports whether the scope lexically contains a Start call
// of its own (nested literal bodies are separate scopes).
func usesSpans(info *types.Info, body *ast.BlockStmt) bool {
	found := false
	var walk func(ast.Node)
	walk = func(root ast.Node) {
		ast.Inspect(root, func(n ast.Node) bool {
			if found {
				return false
			}
			if _, ok := n.(*ast.FuncLit); ok && n != root {
				return false
			}
			if call, ok := n.(*ast.CallExpr); ok {
				if fn := analysis.Callee(info, call); fn != nil && isRecorderStart(fn) {
					found = true
					return false
				}
			}
			return true
		})
	}
	walk(body)
	return found
}

// --- call-shape recognition ---

const (
	opNone = iota
	opCharge
	opFree
)

// ledgerOp classifies a call as a ledger charge or free: a method
// named Alloc/Charge (charge) or Free/Release (free) with exactly one
// int64 parameter and no results, declared on a type (or interface) of
// internal/mine or internal/obs.
func ledgerOp(info *types.Info, call *ast.CallExpr) (int, ast.Expr) {
	fn := analysis.Callee(info, call)
	if fn == nil || len(call.Args) != 1 {
		return opNone, nil
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil || sig.Params().Len() != 1 || sig.Results().Len() != 0 {
		return opNone, nil
	}
	if b, ok := sig.Params().At(0).Type().Underlying().(*types.Basic); !ok || b.Kind() != types.Int64 {
		return opNone, nil
	}
	if pkg := fn.Pkg(); pkg == nil || (pkg.Path() != minePath && pkg.Path() != obsPath) {
		return opNone, nil
	}
	switch fn.Name() {
	case "Alloc", "Charge":
		return opCharge, call.Args[0]
	case "Free", "Release":
		return opFree, call.Args[0]
	}
	return opNone, nil
}

// identObj resolves e to the variable object it names, or nil.
func identObj(info *types.Info, e ast.Expr) types.Object {
	if e == nil {
		return nil
	}
	id, ok := ast.Unparen(e).(*ast.Ident)
	if !ok || id.Name == "_" {
		return nil
	}
	if obj := info.Uses[id]; obj != nil {
		return obj
	}
	return info.Defs[id]
}

// varsIn collects the variable objects named anywhere in e.
func varsIn(info *types.Info, e ast.Expr) []types.Object {
	var out []types.Object
	ast.Inspect(e, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok {
			if obj, ok := info.Uses[id].(*types.Var); ok {
				out = append(out, obj)
			}
		}
		return true
	})
	return out
}

func objSet(info *types.Info, e ast.Expr) map[types.Object]bool {
	m := map[types.Object]bool{}
	for _, o := range varsIn(info, e) {
		m[o] = true
	}
	return m
}

// startCall returns e as a (*obs.Recorder).Start call, or nil.
func startCall(info *types.Info, e ast.Expr) *ast.CallExpr {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return nil
	}
	if fn := analysis.Callee(info, call); fn != nil && isRecorderStart(fn) {
		return call
	}
	return nil
}

func isRecorderStart(fn *types.Func) bool {
	return fn.Name() == "Start" && hasRecv(fn, obsPath, "Recorder")
}

func isSpanEnd(fn *types.Func) bool {
	return fn.Name() == "End" && hasRecv(fn, obsPath, "Span")
}

func hasRecv(fn *types.Func, pkgPath, typeName string) bool {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	t := sig.Recv().Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	return ok && named.Obj().Name() == typeName &&
		named.Obj().Pkg() != nil && named.Obj().Pkg().Path() == pkgPath
}
