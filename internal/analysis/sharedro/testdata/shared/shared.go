// Fixture for the sharedro analyzer: RunSharded worker closures may
// read captured shared state but never write it, directly or through
// a callee that writes a parameter.
package fixture

import "cfpgrowth/internal/mine"

type dec struct {
	n   int
	buf []uint32
}

// fill writes its receiver: callers see writes(0x1) in the summary.
func (d *dec) fill() { d.n++ }

// scribble writes through its parameter: writes(0x1).
func scribble(d *dec) { d.n = 7 }

// peek only reads.
func peek(d *dec) int { return d.n }

func use(int) {}

func directWrites(workers int, shards [][]int, ctl *mine.Control, top *dec) error {
	return mine.RunSharded(workers, shards, ctl, func(worker, shard, job int) error {
		top.n = job // want `^worker closure writes top, which is captured from the spawning scope and shared across RunSharded workers; an unsynchronized write here is a data race — make it worker-local or write it before the pool starts$`
		return nil
	})
}

func elementWrite(workers int, shards [][]int, ctl *mine.Control, top *dec) error {
	return mine.RunSharded(workers, shards, ctl, func(worker, shard, job int) error {
		top.buf[0] = uint32(job) // want `^worker closure writes top, which is captured from the spawning scope and shared across RunSharded workers; an unsynchronized write here is a data race — make it worker-local or write it before the pool starts$`
		return nil
	})
}

func incWrite(workers int, shards [][]int, ctl *mine.Control, top *dec) error {
	return mine.RunSharded(workers, shards, ctl, func(worker, shard, job int) error {
		top.n++ // want `^worker closure writes top, which is captured from the spawning scope and shared across RunSharded workers; an unsynchronized write here is a data race — make it worker-local or write it before the pool starts$`
		return nil
	})
}

func receiverWrite(workers int, shards [][]int, ctl *mine.Control, top *dec) error {
	return mine.RunSharded(workers, shards, ctl, func(worker, shard, job int) error {
		top.fill() // want `^call to fill writes through top, which is captured from the spawning scope and shared across RunSharded workers; workers may only read shared decodes — give each worker its own copy or do the write before the pool starts$`
		return nil
	})
}

func paramWrite(workers int, shards [][]int, ctl *mine.Control, top *dec) error {
	return mine.RunSharded(workers, shards, ctl, func(worker, shard, job int) error {
		scribble(top) // want `^call to scribble writes through top, which is captured from the spawning scope and shared across RunSharded workers; workers may only read shared decodes — give each worker its own copy or do the write before the pool starts$`
		return nil
	})
}

func copyWrite(workers int, shards [][]int, ctl *mine.Control, top []uint32) error {
	return mine.RunSharded(workers, shards, ctl, func(worker, shard, job int) error {
		copy(top, []uint32{1}) // want `^copy writes into top, which is captured from the spawning scope and shared across RunSharded workers; an unsynchronized write here is a data race — make it worker-local or write it before the pool starts$`
		return nil
	})
}

func readsOnly(workers int, shards [][]int, ctl *mine.Control, top *dec) error {
	return mine.RunSharded(workers, shards, ctl, func(worker, shard, job int) error {
		use(top.n)
		use(peek(top))
		return nil
	})
}

// perWorker state indexed by the closure's parameters is partitioned
// by construction and exempt, including through locals derived from
// the partitioned access.
func perWorker(workers int, shards [][]int, ctl *mine.Control, ds []*dec) error {
	return mine.RunSharded(workers, shards, ctl, func(worker, shard, job int) error {
		ds[worker].n = job
		ds[worker].fill()
		m := ds[worker]
		m.n++
		scribble(m)
		return nil
	})
}

// The synchronized layers are their own contract: stopping the shared
// Control from a worker is how first-error-wins works.
func stopsControl(workers int, shards [][]int, ctl *mine.Control) error {
	return mine.RunSharded(workers, shards, ctl, func(worker, shard, job int) error {
		ctl.Probe(int64(job))
		return nil
	})
}

// Writes in an ordinary function literal (not a RunSharded worker)
// are out of scope.
func notAWorker(top *dec) {
	f := func() { top.n = 1 }
	f()
}
