// Package sharedro guards the read-only contract of the data shared
// across mine.RunSharded workers. The sharded mine path is only
// race-free because workers share nothing mutable: the initial
// CFP-array and its flat decoding are built once before the pool
// starts and then only read; everything a worker mutates is its own
// (per-worker growers and arenas) or synchronized by construction
// (Control, sinks, recorders). A write from a worker closure to
// captured shared state — direct, or hidden inside a callee that
// writes through a parameter — is a data race the race detector only
// catches when the schedule cooperates.
//
// The analyzer inspects every function literal passed to
// mine.RunSharded. A variable captured from the spawning scope is
// shared; writes to it or through it are reported:
//
//   - directly: d.field = v, d.buf[i] = v, *d = v, d = v, d.n++;
//   - via a callee whose summary (summary.Effects.WritesParams) says
//     it writes through the parameter the shared variable is passed
//     as — including method receivers, so topDec.From(arr) inside a
//     worker is caught even though the store is two calls deep.
//
// Two access shapes are exempt: an access indexed by one of the
// closure's own parameters (growers[worker], arenas[worker] — the
// pool partitions those by construction), and values of the
// synchronized layers (internal/mine, internal/obs, sync, context,
// and interface values), whose mutation is their own contract.
package sharedro

import (
	"go/ast"
	"go/token"
	"go/types"

	"cfpgrowth/internal/analysis"
	"cfpgrowth/internal/analysis/summary"
)

// Analyzer is the sharedro rule, scoped by the driver to the packages
// that drive sharded mining (internal/core, internal/pfp).
var Analyzer = &analysis.Analyzer{
	Name: "sharedro",
	Doc: `forbids writes from a mine.RunSharded worker closure to values
captured from the spawning scope (directly or through a callee whose
summary writes a parameter): workers share the top-level CFP-array and
its flat decoding read-only, and an unsynchronized write is a data
race; per-worker state indexed by the closure's parameters and the
synchronized mine/obs layers are exempt`,
	Requires:  []*analysis.Analyzer{summary.Analyzer},
	FactTypes: []analysis.Fact{new(summary.Effects)},
	Run:       run,
}

func run(pass *analysis.Pass) error {
	lookup := summary.Lookuper(pass)
	for _, fd := range pass.FuncDecls() {
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := analysis.Callee(pass.TypesInfo, call)
			if fn == nil || fn.Name() != "RunSharded" ||
				fn.Pkg() == nil || fn.Pkg().Path() != "cfpgrowth/internal/mine" {
				return true
			}
			if len(call.Args) != 4 {
				return true
			}
			if lit, ok := ast.Unparen(call.Args[3]).(*ast.FuncLit); ok {
				checkWorker(pass, lit, lookup)
			}
			return true
		})
	}
	return nil
}

// checkWorker reports shared-state writes inside one worker literal.
func checkWorker(pass *analysis.Pass, lit *ast.FuncLit, lookup summary.Lookup) {
	info := pass.TypesInfo

	// The closure's own parameters: accesses indexed by them are
	// partitioned per worker/shard/job and exempt.
	params := map[types.Object]bool{}
	for _, f := range lit.Type.Params.List {
		for _, name := range f.Names {
			if obj := info.Defs[name]; obj != nil {
				params[obj] = true
			}
		}
	}

	ast.Inspect(lit.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			if n.Tok == token.DEFINE {
				break
			}
			for _, lhs := range n.Lhs {
				if obj, ok := sharedRoot(info, lit, params, lhs); ok {
					pass.Reportf(lhs.Pos(), "worker closure writes %s, which is captured from the spawning scope and shared across RunSharded workers; an unsynchronized write here is a data race — make it worker-local or write it before the pool starts", obj.Name())
				}
			}
		case *ast.IncDecStmt:
			if obj, ok := sharedRoot(info, lit, params, n.X); ok {
				pass.Reportf(n.X.Pos(), "worker closure writes %s, which is captured from the spawning scope and shared across RunSharded workers; an unsynchronized write here is a data race — make it worker-local or write it before the pool starts", obj.Name())
			}
		case *ast.CallExpr:
			checkCall(pass, lit, params, n, lookup)
		}
		return true
	})
}

// checkCall reports shared captures passed where the callee's summary
// writes.
func checkCall(pass *analysis.Pass, lit *ast.FuncLit, params map[types.Object]bool, call *ast.CallExpr, lookup summary.Lookup) {
	info := pass.TypesInfo
	// copy(dst, ...) writes dst like a callee writing its first param.
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && len(call.Args) == 2 {
		if b, ok := info.Uses[id].(*types.Builtin); ok && b.Name() == "copy" {
			if obj, ok := sharedRoot(info, lit, params, call.Args[0]); ok {
				pass.Reportf(call.Args[0].Pos(), "copy writes into %s, which is captured from the spawning scope and shared across RunSharded workers; an unsynchronized write here is a data race — make it worker-local or write it before the pool starts", obj.Name())
			}
			return
		}
	}
	fn := analysis.Callee(info, call)
	if fn == nil {
		return
	}
	eff := lookup(fn)
	if eff == nil || eff.WritesParams == 0 {
		return
	}
	for i, a := range summary.ArgExprs(call, fn) {
		if a == nil || eff.WritesParams&(1<<i) == 0 {
			continue
		}
		if obj, ok := sharedRoot(info, lit, params, a); ok {
			pass.Reportf(a.Pos(), "call to %s writes through %s, which is captured from the spawning scope and shared across RunSharded workers; workers may only read shared decodes — give each worker its own copy or do the write before the pool starts", fn.Name(), obj.Name())
		}
	}
}

// sharedRoot chases e to its base variable and reports it when that
// variable is captured shared state: declared outside the worker
// literal, not reached through a parameter-indexed access, and not
// part of the synchronized layers.
func sharedRoot(info *types.Info, lit *ast.FuncLit, params map[types.Object]bool, e ast.Expr) (types.Object, bool) {
	for {
		switch x := e.(type) {
		case *ast.ParenExpr:
			e = x.X
		case *ast.SelectorExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.UnaryExpr:
			e = x.X
		case *ast.TypeAssertExpr:
			e = x.X
		case *ast.SliceExpr:
			e = x.X
		case *ast.IndexExpr:
			// Indexed by a closure parameter: the pool partitions this
			// access per worker/shard/job by construction.
			if id, ok := ast.Unparen(x.Index).(*ast.Ident); ok && params[info.Uses[id]] {
				return nil, false
			}
			e = x.X
		default:
			id, ok := e.(*ast.Ident)
			if !ok {
				return nil, false
			}
			v, ok := info.Uses[id].(*types.Var)
			if !ok || v.IsField() {
				return nil, false
			}
			if lit.Pos() <= v.Pos() && v.Pos() <= lit.End() {
				return nil, false // the closure's own local or parameter
			}
			if synchronized(v.Type()) {
				return nil, false
			}
			return v, true
		}
	}
}

// synchronized reports whether t belongs to the layers whose
// concurrent mutation is their own documented contract: the mine and
// obs packages, sync/context, and interface values (sinks, trackers).
func synchronized(t types.Type) bool {
	for {
		switch u := t.(type) {
		case *types.Pointer:
			t = u.Elem()
		case *types.Slice:
			t = u.Elem()
		case *types.Array:
			t = u.Elem()
		default:
			if types.IsInterface(t) {
				return true
			}
			named, ok := t.(*types.Named)
			if !ok {
				return false
			}
			pkg := named.Obj().Pkg()
			if pkg == nil {
				return false
			}
			switch pkg.Path() {
			case "cfpgrowth/internal/mine", "cfpgrowth/internal/obs", "sync", "context":
				return true
			}
			return false
		}
	}
}
