package sharedro_test

import (
	"testing"

	"cfpgrowth/internal/analysis"
	"cfpgrowth/internal/analysis/sharedro"
)

func TestShared(t *testing.T) {
	analysis.RunFixture(t, sharedro.Analyzer, "testdata/shared")
}
