// Package callgraph builds the static call graph of one type-checked
// package: one node per function declaration, one edge per call site
// whose callee go/types can resolve statically (package functions and
// methods on concrete receiver types). It deliberately does not chase
// interface dispatch or function values — the mining packages call
// through interfaces in exactly two shapes (sinks and trackers) and
// both are handled by shape-matching in the consumers — so an
// unresolvable call site is recorded on its caller as a Dynamic mark
// (⊤) instead of a fabricated edge set. Consumers that need soundness
// treat a ⊤-marked caller conservatively.
//
// The graph also exposes its strongly connected components in
// bottom-up topological order (callees before callers), the order in
// which summary-based interprocedural analyses reach a fixpoint in one
// sweep outside of cycles.
package callgraph

import (
	"go/ast"
	"go/token"
	"go/types"

	"cfpgrowth/internal/analysis"
)

// A Graph is the static call graph of one package's declared
// functions.
type Graph struct {
	// Nodes maps each declared function (and method) with a body to its
	// node.
	Nodes map[*types.Func]*Node
	// order preserves declaration order for deterministic iteration.
	order []*Node
}

// A Node is one declared function and its outgoing call sites.
type Node struct {
	// Fn is the declared function object.
	Fn *types.Func
	// Decl is its declaration (Body non-nil).
	Decl *ast.FuncDecl
	// Calls lists the statically resolved call sites in source order,
	// including calls to functions of other packages and calls appearing
	// inside nested function literals (marked InLit: they execute when
	// the literal runs, not necessarily when Fn does).
	Calls []Call
	// Dynamic lists the positions of call sites with no static callee:
	// calls through function values and interface method dispatch. Each
	// is a ⊤ for effect propagation.
	Dynamic []token.Pos
}

// A Call is one statically resolved call site.
type Call struct {
	// Site is the call expression.
	Site *ast.CallExpr
	// Callee is the resolved function or concrete method. For interface
	// methods the site is recorded under Node.Dynamic instead, except
	// that the interface method object itself is kept here with
	// Interface set so shape-matchers (sink detection) still see it.
	Callee *types.Func
	// Interface marks a call dispatched through an interface method:
	// Callee is the interface's method object, not the implementation.
	Interface bool
	// InLit marks a call site inside a nested function literal of the
	// declaring function.
	InLit bool
}

// Funcs yields the nodes in declaration order.
func (g *Graph) Funcs() []*Node { return g.order }

// New builds the call graph of the package represented by files+info.
func New(files []*ast.File, info *types.Info) *Graph {
	g := &Graph{Nodes: make(map[*types.Func]*Node)}
	for _, f := range files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fn, ok := info.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			n := &Node{Fn: fn, Decl: fd}
			g.Nodes[fn] = n
			g.order = append(g.order, n)
		}
	}
	for _, n := range g.order {
		collectCalls(n, info)
	}
	return g
}

// collectCalls walks one declaration body, classifying every call
// site.
func collectCalls(n *Node, info *types.Info) {
	depth := 0
	var walk func(ast.Node)
	walk = func(root ast.Node) {
		ast.Inspect(root, func(m ast.Node) bool {
			switch m := m.(type) {
			case *ast.FuncLit:
				depth++
				walk(m.Body)
				depth--
				return false
			case *ast.CallExpr:
				classify(n, info, m, depth > 0)
			}
			return true
		})
	}
	walk(n.Decl.Body)
}

func classify(n *Node, info *types.Info, call *ast.CallExpr, inLit bool) {
	// Conversions and builtins are not calls.
	if tv, ok := info.Types[call.Fun]; ok && tv.IsType() {
		return
	}
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if _, ok := info.Uses[id].(*types.Builtin); ok {
			return
		}
	}
	// A directly invoked literal is not dynamic: its body is walked and
	// its calls recorded (as InLit) by the same sweep.
	if _, ok := ast.Unparen(call.Fun).(*ast.FuncLit); ok {
		return
	}
	fn := analysis.Callee(info, call)
	if fn == nil {
		n.Dynamic = append(n.Dynamic, call.Pos())
		return
	}
	iface := isInterfaceMethod(fn)
	if iface {
		// Dispatch target unknown: ⊤ for effects, but keep the site so
		// shape-matchers can still recognize e.g. Sink.Emit.
		n.Dynamic = append(n.Dynamic, call.Pos())
	}
	n.Calls = append(n.Calls, Call{Site: call, Callee: fn, Interface: iface, InLit: inLit})
}

// isInterfaceMethod reports whether fn is declared on an interface
// type (so a call through it is dynamic dispatch).
func isInterfaceMethod(fn *types.Func) bool {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	_, ok = sig.Recv().Type().Underlying().(*types.Interface)
	return ok
}

// SCCs returns the graph's strongly connected components over the
// intra-package, non-interface edges (the only edges that can form
// cycles a bottom-up summary pass must iterate), in bottom-up
// topological order: every component appears after the components it
// calls into. Within a component, nodes keep declaration order.
func (g *Graph) SCCs() [][]*Node {
	t := &tarjan{
		g:       g,
		index:   make(map[*Node]int),
		lowlink: make(map[*Node]int),
		onstack: make(map[*Node]bool),
	}
	for _, n := range g.order {
		if _, seen := t.index[n]; !seen {
			t.strongconnect(n)
		}
	}
	// Tarjan emits components in reverse topological order of the
	// condensation — which for call graphs is exactly bottom-up
	// (callees first). Restore declaration order inside each.
	for _, c := range t.out {
		sortByDecl(c)
	}
	return t.out
}

// succs yields the distinct intra-package callee nodes of n (interface
// and cross-package callees have no node and are skipped).
func (g *Graph) succs(n *Node) []*Node {
	var out []*Node
	seen := map[*Node]bool{}
	for _, c := range n.Calls {
		if c.Interface {
			continue
		}
		if m, ok := g.Nodes[c.Callee]; ok && !seen[m] {
			seen[m] = true
			out = append(out, m)
		}
	}
	return out
}

// SCCInts computes the strongly connected components of a directed
// graph over the integer nodes [0, n) with successor function succ,
// returned in reverse topological order of the condensation (a
// component appears before every component with an edge into it).
// It is the same Tarjan core that orders the call graph, exposed as a
// plain-integer variant so other fixpoint layers can reuse it — the
// points-to solver (internal/analysis/pointsto) collapses
// constraint-graph copy cycles with it, processing the emitted list
// back-to-front to visit sources before destinations.
func SCCInts(n int, succ func(int) []int) [][]int {
	t := &intTarjan{
		succ:    succ,
		index:   make([]int, n),
		lowlink: make([]int, n),
		onstack: make([]bool, n),
	}
	for i := range t.index {
		t.index[i] = -1
	}
	for v := 0; v < n; v++ {
		if t.index[v] < 0 {
			t.connect(v)
		}
	}
	return t.out
}

// intTarjan mirrors tarjan over integer nodes. The constraint graphs
// it serves are wide, not deep (copy chains through a few assignment
// hops), so recursion is fine there too.
type intTarjan struct {
	succ    func(int) []int
	counter int
	index   []int
	lowlink []int
	onstack []bool
	stack   []int
	out     [][]int
}

func (t *intTarjan) connect(v int) {
	t.index[v] = t.counter
	t.lowlink[v] = t.counter
	t.counter++
	t.stack = append(t.stack, v)
	t.onstack[v] = true
	for _, w := range t.succ(v) {
		if t.index[w] < 0 {
			t.connect(w)
			if t.lowlink[w] < t.lowlink[v] {
				t.lowlink[v] = t.lowlink[w]
			}
		} else if t.onstack[w] && t.index[w] < t.lowlink[v] {
			t.lowlink[v] = t.index[w]
		}
	}
	if t.lowlink[v] == t.index[v] {
		var comp []int
		for {
			w := t.stack[len(t.stack)-1]
			t.stack = t.stack[:len(t.stack)-1]
			t.onstack[w] = false
			comp = append(comp, w)
			if w == v {
				break
			}
		}
		t.out = append(t.out, comp)
	}
}

// tarjan is the classic iterative-enough recursion; package call
// graphs are shallow, so plain recursion is fine.
type tarjan struct {
	g       *Graph
	counter int
	index   map[*Node]int
	lowlink map[*Node]int
	onstack map[*Node]bool
	stack   []*Node
	out     [][]*Node
}

func (t *tarjan) strongconnect(v *Node) {
	t.index[v] = t.counter
	t.lowlink[v] = t.counter
	t.counter++
	t.stack = append(t.stack, v)
	t.onstack[v] = true
	for _, w := range t.g.succs(v) {
		if _, seen := t.index[w]; !seen {
			t.strongconnect(w)
			if t.lowlink[w] < t.lowlink[v] {
				t.lowlink[v] = t.lowlink[w]
			}
		} else if t.onstack[w] && t.index[w] < t.lowlink[v] {
			t.lowlink[v] = t.index[w]
		}
	}
	if t.lowlink[v] == t.index[v] {
		var comp []*Node
		for {
			w := t.stack[len(t.stack)-1]
			t.stack = t.stack[:len(t.stack)-1]
			t.onstack[w] = false
			comp = append(comp, w)
			if w == v {
				break
			}
		}
		t.out = append(t.out, comp)
	}
}

func sortByDecl(c []*Node) {
	for i := 1; i < len(c); i++ {
		for j := i; j > 0 && c[j].Decl.Pos() < c[j-1].Decl.Pos(); j-- {
			c[j], c[j-1] = c[j-1], c[j]
		}
	}
}
