package callgraph

import (
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"testing"

	"cfpgrowth/internal/analysis"
)

const src = `package p

type T struct{ n int }

func (t *T) bump() { t.n++ }

type Doer interface{ Do() }

func leaf() int { return 1 }

func mid(t *T) int {
	t.bump()
	return leaf()
}

func top(t *T, d Doer, f func()) int {
	d.Do()     // interface dispatch: dynamic
	f()        // function value: dynamic
	go func() {
		leaf() // call inside a literal
	}()
	return mid(t) + len("x") // len is a builtin, not an edge
}

func even(n int) bool {
	if n == 0 {
		return true
	}
	return odd(n - 1)
}

func odd(n int) bool {
	if n == 0 {
		return false
	}
	return even(n - 1)
}
`

func load(t *testing.T) (*Graph, map[string]*Node) {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "p.go", src, parser.ParseComments|parser.SkipObjectResolution)
	if err != nil {
		t.Fatal(err)
	}
	info := analysis.NewTypesInfo()
	conf := types.Config{Importer: importer.Default()}
	if _, err := conf.Check("p", fset, []*ast.File{f}, info); err != nil {
		t.Fatal(err)
	}
	g := New([]*ast.File{f}, info)
	byName := map[string]*Node{}
	for _, n := range g.Funcs() {
		byName[n.Fn.Name()] = n
	}
	return g, byName
}

func calleeNames(n *Node, inLit bool) []string {
	var out []string
	for _, c := range n.Calls {
		if c.InLit == inLit {
			out = append(out, c.Callee.Name())
		}
	}
	return out
}

func TestEdges(t *testing.T) {
	_, byName := load(t)
	mid := byName["mid"]
	got := calleeNames(mid, false)
	want := []string{"bump", "leaf"}
	if len(got) != len(want) {
		t.Fatalf("mid calls %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("mid calls %v, want %v", got, want)
		}
	}
	if len(mid.Dynamic) != 0 {
		t.Fatalf("mid has %d dynamic sites, want 0", len(mid.Dynamic))
	}
}

func TestDynamicAndLits(t *testing.T) {
	_, byName := load(t)
	top := byName["top"]
	// d.Do() and f() are dynamic; d.Do() additionally keeps its
	// interface-method call for shape matchers.
	if len(top.Dynamic) != 2 {
		t.Fatalf("top has %d dynamic sites, want 2", len(top.Dynamic))
	}
	var iface int
	for _, c := range top.Calls {
		if c.Interface {
			iface++
			if c.Callee.Name() != "Do" {
				t.Fatalf("interface callee %s, want Do", c.Callee.Name())
			}
		}
	}
	if iface != 1 {
		t.Fatalf("top has %d interface calls, want 1", iface)
	}
	inLit := calleeNames(top, true)
	if len(inLit) != 1 || inLit[0] != "leaf" {
		t.Fatalf("top in-literal calls %v, want [leaf]", inLit)
	}
}

func TestSCCOrder(t *testing.T) {
	g, byName := load(t)
	sccs := g.SCCs()
	pos := map[*Node]int{}
	for i, comp := range sccs {
		for _, n := range comp {
			pos[n] = i
		}
	}
	// Bottom-up: callees before callers.
	if pos[byName["leaf"]] >= pos[byName["mid"]] {
		t.Fatalf("leaf (comp %d) should precede mid (comp %d)", pos[byName["leaf"]], pos[byName["mid"]])
	}
	if pos[byName["mid"]] >= pos[byName["top"]] {
		t.Fatalf("mid (comp %d) should precede top (comp %d)", pos[byName["mid"]], pos[byName["top"]])
	}
	// even/odd form one two-node component.
	if pos[byName["even"]] != pos[byName["odd"]] {
		t.Fatalf("even (comp %d) and odd (comp %d) should share a component", pos[byName["even"]], pos[byName["odd"]])
	}
	for _, comp := range sccs {
		if len(comp) == 2 {
			if comp[0].Fn.Name() != "even" || comp[1].Fn.Name() != "odd" {
				t.Fatalf("two-node component %s,%s; want even,odd", comp[0].Fn.Name(), comp[1].Fn.Name())
			}
		}
	}
}
