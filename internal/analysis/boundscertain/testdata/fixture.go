// Fixture for boundscertain: the test probe reports every certified
// index/slice site, so `want` marks the sites the prover must certify
// and absence of a want marks the ones it must not.
package fixture

const debugChecks = false

func assertf(cond bool, msg string) {
	if debugChecks && !cond {
		panic(msg)
	}
}

func guarded(b []byte, i int) byte {
	if i >= 0 && i < len(b) {
		return b[i] // want `certified`
	}
	return 0
}

func unguarded(b []byte, i int) byte {
	return b[i] // no proof: not certified
}

func halfGuarded(b []byte, i int) byte {
	if i < len(b) {
		return b[i] // i may be negative: not certified
	}
	return 0
}

func loopIndex(b []byte) int {
	s := 0
	for i := 0; i < len(b); i++ {
		s += int(b[i]) // want `certified`
	}
	return s
}

func rangeIndex(b []byte) int {
	s := 0
	for i := range b {
		s += int(b[i]) // want `certified`
	}
	return s
}

func staleVersion(b []byte, i int, c []byte) byte {
	if i >= 0 && i < len(b) {
		b = c
		return b[i] // guard was against the old b: not certified
	}
	return 0
}

func asserted(b []byte, i int) byte {
	if debugChecks {
		assertf(i >= 0 && i < len(b), "index out of range")
	}
	return b[i] // want `certified`
}

func arrayExact(a [16]byte, i int) byte {
	if i >= 0 && i < 16 {
		return a[i] // want `certified`
	}
	return 0
}

func arrayUnproven(a [16]byte, i int) byte {
	if i >= 0 && i < 32 {
		return a[i] // may still exceed 15: not certified
	}
	return 0
}

func sliceTail(b []byte, pos int) []byte {
	if pos >= 0 && pos <= len(b) {
		return b[pos:] // want `certified`
	}
	return nil
}

func sliceHead(b []byte, n int) []byte {
	if n >= 0 && n <= len(b) {
		return b[:n] // want `certified`
	}
	return nil
}

func sliceWindow(b []byte, n int) []byte {
	if n >= 4 && n <= len(b) {
		return b[2:n] // want `certified`
	}
	return nil
}

func sliceCrossing(b []byte, i, j int) []byte {
	if i >= 0 && i <= len(b) && j >= 0 && j <= len(b) {
		return b[i:j] // i may exceed j: not certified
	}
	return nil
}

func stringIndex(s string, i int) byte {
	if i >= 0 && i < len(s) {
		return s[i] // want `certified`
	}
	return 0
}

func decrementCarries(b []byte, i int) byte {
	if i >= 1 && i <= len(b) {
		return b[i-1] // want `certified`
	}
	return 0
}
