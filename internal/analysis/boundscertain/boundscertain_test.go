package boundscertain_test

import (
	"go/types"
	"testing"

	"cfpgrowth/internal/analysis"
	"cfpgrowth/internal/analysis/boundscertain"
)

// probe reports every certified site as a diagnostic so the fixture's
// want comments pin down exactly what the prover certifies.
var probe = &analysis.Analyzer{
	Name:      "boundsprobe",
	Doc:       "test probe: reports each site certified by boundscertain",
	Requires:  []*analysis.Analyzer{boundscertain.Analyzer},
	FactTypes: []analysis.Fact{new(boundscertain.Certified)},
	Run: func(pass *analysis.Pass) error {
		for _, fd := range pass.FuncDecls() {
			fn, _ := pass.TypesInfo.Defs[fd.Name].(*types.Func)
			for pos := range boundscertain.Sites(pass, fn) {
				pass.Reportf(pos, "certified")
			}
		}
		return nil
	},
}

func TestCertifiedSites(t *testing.T) {
	analysis.RunFixture(t, probe, "testdata")
}
