// Package boundscertain is the discharge side of the numeric layer:
// it proves index and slice expressions in range instead of flagging
// them. It reports nothing; its output is a Certified fact on each
// function listing the sites whose safety follows from dominating
// guards, debugChecks assertions, or callee ranges, as established by
// the interval engine. varintbounds consumes the fact and drops its
// taint findings at certified sites, so the proof layer shrinks the
// //cfplint:ignore surface rather than growing it.
//
// An index a[i] is certified when the interval of i has a
// non-negative lower bound and an upper bound below the length of a —
// either the exact length of an array, or a symbolic len bound
// established against the same SSA version of the slice the index
// reads (a reassignment of the slice between guard and use breaks the
// version identity and voids the proof). A slice expression is
// certified when each present bound is likewise proven within
// [0, len] and the low/high pair cannot cross.
package boundscertain

import (
	"go/ast"
	"go/token"
	"go/types"

	"cfpgrowth/internal/analysis"
	"cfpgrowth/internal/analysis/cfg"
	"cfpgrowth/internal/analysis/interval"
	"cfpgrowth/internal/analysis/ssa"
)

// Certified is the per-function fact: source positions (the Lbrack of
// the index or slice expression) proven in range.
type Certified struct {
	Sites []token.Pos
}

// AFact marks Certified as a fact type.
func (*Certified) AFact() {}

// Analyzer is the boundscertain pass.
var Analyzer = &analysis.Analyzer{
	Name:      "boundscertain",
	Doc:       "certify index/slice expressions proven in range by the interval engine (no findings; publishes the Certified fact)",
	Requires:  []*analysis.Analyzer{interval.Facts},
	FactTypes: []analysis.Fact{new(Certified), new(interval.ResultRanges)},
	Run:       run,
}

// Sites returns the certified positions of fn as a set, empty when no
// fact was published.
func Sites(pass *analysis.Pass, fn *types.Func) map[token.Pos]bool {
	set := map[token.Pos]bool{}
	var fact Certified
	if fn != nil && pass.ImportObjectFact(fn, &fact) {
		for _, p := range fact.Sites {
			set[p] = true
		}
	}
	return set
}

func run(pass *analysis.Pass) error {
	look := interval.PassLookuper(pass)
	for _, fd := range pass.FuncDecls() {
		obj, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func)
		if !ok {
			continue
		}
		sites := certifyFunc(pass, fd, look)
		if len(sites) > 0 {
			pass.ExportObjectFact(obj, &Certified{Sites: sites})
		}
	}
	return nil
}

func certifyFunc(pass *analysis.Pass, fd *ast.FuncDecl, look interval.Lookuper) []token.Pos {
	g := cfg.New(fd.Body)
	fn := ssa.Build(fd, g, pass.TypesInfo)
	res := interval.Analyze(fn, pass.TypesInfo, look)

	var sites []token.Pos
	seen := map[ast.Node]bool{}
	for _, blk := range g.Blocks {
		if !fn.Reachable(blk) {
			continue
		}
		for _, n := range blk.Nodes {
			if _, ok := n.(cfg.RangeHead); ok {
				continue // synthetic: ast.Inspect cannot walk it
			}
			if seen[n] {
				continue
			}
			seen[n] = true
			ast.Inspect(n, func(m ast.Node) bool {
				switch m := m.(type) {
				case *ast.FuncLit:
					return false // opaque to the SSA form
				case *ast.IndexExpr:
					if certifyIndex(pass.TypesInfo, fn, res, m) {
						sites = append(sites, m.Lbrack)
					}
				case *ast.SliceExpr:
					if certifySlice(pass.TypesInfo, fn, res, m) {
						sites = append(sites, m.Lbrack)
					}
				}
				return true
			})
		}
	}
	return sites
}

// arrayLen returns the length of the (possibly pointed-to) array type
// and whether base is one.
func arrayLen(info *types.Info, base ast.Expr) (int64, bool) {
	tv, ok := info.Types[base]
	if !ok {
		return 0, false
	}
	ut := tv.Type.Underlying()
	if p, ok := ut.(*types.Pointer); ok {
		ut = p.Elem().Underlying()
	}
	if at, ok := ut.(*types.Array); ok {
		return at.Len(), true
	}
	return 0, false
}

// boundOK reports whether iv proves a value within [0, len(base)+slack]
// at this use of base: slack is -1 for an index (strictly below the
// length) and 0 for a slice bound (the length itself is legal).
func boundOK(fn *ssa.Func, iv interval.Interval, base ast.Expr, slack int64, exactLen int64, isArray bool) bool {
	if iv.Empty() || iv.Lo < 0 {
		return false
	}
	if isArray {
		return iv.Hi <= exactLen+slack
	}
	if iv.Sym == nil || iv.Sym.Off > slack {
		return false
	}
	id, ok := ast.Unparen(base).(*ast.Ident)
	if !ok {
		return false
	}
	return fn.UseOf[id] == iv.Sym.Len
}

func certifyIndex(info *types.Info, fn *ssa.Func, res *interval.Result, m *ast.IndexExpr) bool {
	tv, ok := info.Types[m.X]
	if !ok {
		return false
	}
	switch tv.Type.Underlying().(type) {
	case *types.Map, *types.Chan:
		return false
	}
	n, isArray := arrayLen(info, m.X)
	return boundOK(fn, res.Eval(m.Index), m.X, -1, n, isArray)
}

func certifySlice(info *types.Info, fn *ssa.Func, res *interval.Result, m *ast.SliceExpr) bool {
	if m.Max != nil {
		return false // full-slice capacity bounds are out of scope
	}
	n, isArray := arrayLen(info, m.X)
	zero := func(e ast.Expr) bool {
		if e == nil {
			return true
		}
		c, ok := res.Eval(e).Const()
		return ok && c == 0
	}
	proven := func(e ast.Expr) bool {
		return boundOK(fn, res.Eval(e), m.X, 0, n, isArray)
	}
	switch {
	case zero(m.Low) && m.High == nil:
		return true // b[:], b[0:]: cannot panic
	case zero(m.Low):
		return proven(m.High)
	case m.High == nil:
		return proven(m.Low)
	default:
		// Both bounds present and non-zero: with the high bound proven
		// ≤ len, the low bound only needs 0 ≤ low ≤ high numerically
		// (low ≤ high ≤ len cannot cross or escape).
		lo, hi := res.Eval(m.Low), res.Eval(m.High)
		return proven(m.High) && !lo.Empty() && lo.Lo >= 0 && lo.Hi <= hi.Lo
	}
}
