// Fixture for the errsentinel analyzer: sentinel classification done
// wrong (flagged) and right (accepted).
package fixture

import (
	"errors"
	"fmt"
	"strings"

	"cfpgrowth/internal/mine"
)

// compareEq classifies with ==, which breaks as soon as the sentinel
// is wrapped.
func compareEq(err error) bool {
	return err == mine.ErrCanceled // want 13:`sentinel compared with ==: use errors.Is`
}

// compareNeq is the != spelling.
func compareNeq(err error) bool {
	return err != mine.ErrBudgetExceeded // want 13:`sentinel compared with !=: use errors.Is`
}

// goodIs classifies with errors.Is.
func goodIs(err error) bool {
	return errors.Is(err, mine.ErrCanceled) || errors.Is(err, mine.ErrBudgetExceeded)
}

// switchCase is == in disguise.
func switchCase(err error) string {
	switch err {
	case mine.ErrCanceled: // want `sentinel in switch case compares with ==: use errors.Is`
		return "canceled"
	case nil:
		return "ok"
	}
	return "other"
}

// wrapNoVerb drops the sentinel from the error chain.
func wrapNoVerb(n int) error {
	return fmt.Errorf("run stopped after %d itemsets: %v", n, mine.ErrBudgetExceeded) // want `sentinel passed to fmt.Errorf without %w`
}

// goodWrap keeps the chain intact.
func goodWrap(n int) error {
	return fmt.Errorf("%w: after %d itemsets", mine.ErrBudgetExceeded, n)
}

// goodPlainErrorf formats unrelated errors however it likes.
func goodPlainErrorf(path string, err error) error {
	return fmt.Errorf("open %s: %v", path, err)
}

// stringMatch recognizes the sentinel by message.
func stringMatch(err error) bool {
	return strings.Contains(err.Error(), "canceled") // want `sentinel matched by error string: use errors.Is`
}

// stringCompare is the == spelling of the same mistake.
func stringCompare(err error) bool {
	return err.Error() == "mine: resource budget exceeded" // want `sentinel matched by error string: use errors.Is`
}

// goodStringUse may mention sentinel words in unrelated strings.
func goodStringUse(s string) bool {
	return strings.Contains(s, "budget")
}
