// Package errsentinel guards how the mining sentinels ErrCanceled and
// ErrBudgetExceeded travel through the codebase. Since PR 1 every
// layer wraps the stop cause with %w and callers classify it with
// errors.Is; a single == comparison or error-string match anywhere in
// the chain silently breaks classification the moment a wrapper adds
// context (which Control.Stop already does).
package errsentinel

import (
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"strconv"
	"strings"

	"cfpgrowth/internal/analysis"
)

// Analyzer is the errsentinel rule.
var Analyzer = &analysis.Analyzer{
	Name: "errsentinel",
	Doc: `requires mine.ErrCanceled / mine.ErrBudgetExceeded to be
wrapped with %w and classified with errors.Is — never compared with
== / != / switch cases, and never matched by error string`,
	Run: run,
}

const minePath = "cfpgrowth/internal/mine"

// isSentinel reports whether e refers to one of the mining sentinels.
func isSentinel(pass *analysis.Pass, e ast.Expr) bool {
	return analysis.IsPkgObj(pass.TypesInfo, e, minePath, "ErrCanceled") ||
		analysis.IsPkgObj(pass.TypesInfo, e, minePath, "ErrBudgetExceeded")
}

// sentinelWords matches string literals that smell like an attempt to
// recognize a sentinel by message.
var sentinelWords = regexp.MustCompile(`(?i)cancel|budget`)

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.BinaryExpr:
				checkCompare(pass, n)
			case *ast.SwitchStmt:
				checkSwitch(pass, n)
			case *ast.CallExpr:
				checkErrorf(pass, n)
				checkStringMatch(pass, n)
			}
			return true
		})
	}
	return nil
}

// checkCompare flags == / != against a sentinel, and string-compares
// of err.Error() against sentinel-looking literals.
func checkCompare(pass *analysis.Pass, be *ast.BinaryExpr) {
	if be.Op != token.EQL && be.Op != token.NEQ {
		return
	}
	if isSentinel(pass, be.X) || isSentinel(pass, be.Y) {
		pass.Reportf(be.OpPos, "sentinel compared with %s: use errors.Is (wrapped causes never compare equal)", be.Op)
		return
	}
	for lit, other := range map[ast.Expr]ast.Expr{be.X: be.Y, be.Y: be.X} {
		if isSentinelString(lit) && isErrorCall(pass, other) {
			pass.Reportf(be.OpPos, "sentinel matched by error string: use errors.Is")
			return
		}
	}
}

// checkSwitch flags `switch err { case mine.ErrCanceled: }`, which is
// == in disguise.
func checkSwitch(pass *analysis.Pass, sw *ast.SwitchStmt) {
	if sw.Tag == nil {
		return
	}
	for _, stmt := range sw.Body.List {
		cc, ok := stmt.(*ast.CaseClause)
		if !ok {
			continue
		}
		for _, v := range cc.List {
			if isSentinel(pass, v) {
				pass.Reportf(v.Pos(), "sentinel in switch case compares with ==: use errors.Is")
			}
		}
	}
}

// checkErrorf flags fmt.Errorf calls that pass a sentinel without a %w
// verb in the format: the result would not satisfy errors.Is.
func checkErrorf(pass *analysis.Pass, call *ast.CallExpr) {
	fn := analysis.Callee(pass.TypesInfo, call)
	if fn == nil || fn.Name() != "Errorf" || fn.Pkg() == nil || fn.Pkg().Path() != "fmt" {
		return
	}
	if len(call.Args) < 2 {
		return
	}
	carries := false
	for _, arg := range call.Args[1:] {
		if isSentinel(pass, arg) {
			carries = true
			break
		}
	}
	if !carries {
		return
	}
	lit, ok := ast.Unparen(call.Args[0]).(*ast.BasicLit)
	if !ok || lit.Kind != token.STRING {
		return // dynamic format: out of scope
	}
	format, err := strconv.Unquote(lit.Value)
	if err != nil || strings.Contains(format, "%w") {
		return
	}
	pass.Reportf(call.Pos(), "sentinel passed to fmt.Errorf without %%w: wrapped error will not satisfy errors.Is")
}

// checkStringMatch flags strings.Contains/HasPrefix/HasSuffix applied
// to err.Error() with a sentinel-looking pattern.
func checkStringMatch(pass *analysis.Pass, call *ast.CallExpr) {
	fn := analysis.Callee(pass.TypesInfo, call)
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "strings" {
		return
	}
	switch fn.Name() {
	case "Contains", "HasPrefix", "HasSuffix":
	default:
		return
	}
	if len(call.Args) != 2 {
		return
	}
	if isErrorCall(pass, call.Args[0]) && isSentinelString(call.Args[1]) {
		pass.Reportf(call.Pos(), "sentinel matched by error string: use errors.Is")
	}
}

// isErrorCall reports whether e is a call of the Error() string method
// of the error interface (or any type's Error() string).
func isErrorCall(pass *analysis.Pass, e ast.Expr) bool {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return false
	}
	fn := analysis.Callee(pass.TypesInfo, call)
	if fn == nil || fn.Name() != "Error" {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	return ok && sig.Recv() != nil && sig.Params().Len() == 0 && sig.Results().Len() == 1
}

// isSentinelString reports whether e is a string literal containing a
// sentinel-looking word.
func isSentinelString(e ast.Expr) bool {
	lit, ok := ast.Unparen(e).(*ast.BasicLit)
	if !ok || lit.Kind != token.STRING {
		return false
	}
	s, err := strconv.Unquote(lit.Value)
	return err == nil && sentinelWords.MatchString(s)
}
