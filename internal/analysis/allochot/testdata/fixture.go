// Fixture for the allochot analyzer: allocation patterns inside and
// outside functions marked //cfplint:hot.
package fixture

import "fmt"

// record mimics an emission callback taking a concrete payload.
func record(v int) { _ = v }

// logAny mimics a logging shim with an interface parameter.
func logAny(v any) { _ = v }

// logVariadic mimics fmt-style variadic interface parameters.
func logVariadic(vs ...any) { _ = vs }

// formatsInHot builds a label per element.
//
//cfplint:hot
func formatsInHot(xs []int) []string {
	out := make([]string, 0, len(xs))
	for _, x := range xs {
		out = append(out, fmt.Sprintf("item-%d", x)) // want `fmt.Sprintf call in hot function formatsInHot`
	}
	return out
}

// coldMayFormat is identical but unmarked: not checked.
func coldMayFormat(xs []int) []string {
	out := make([]string, 0, len(xs))
	for _, x := range xs {
		out = append(out, fmt.Sprintf("item-%d", x))
	}
	return out
}

// boxesAtCall passes a concrete int where an interface is expected.
//
//cfplint:hot
func boxesAtCall(xs []int) {
	for _, x := range xs {
		logAny(x) // want `int is boxed into any in hot function boxesAtCall`
		record(x)
	}
}

// boxesVariadic boxes each variadic argument.
//
//cfplint:hot
func boxesVariadic(a int, b string) {
	logVariadic(a, b) // want `int is boxed into any in hot function boxesVariadic` `string is boxed into any in hot function boxesVariadic`
}

// boxesAtAssign stores a concrete value into an interface variable.
//
//cfplint:hot
func boxesAtAssign(x int) {
	var v any
	v = x // want `int is boxed into any in hot function boxesAtAssign`
	_ = v
}

// boxesAtDecl boxes in the declaration itself.
//
//cfplint:hot
func boxesAtDecl(x int) {
	var v any = x // want `int is boxed into any in hot function boxesAtDecl`
	_ = v
}

// boxesAtConversion converts explicitly.
//
//cfplint:hot
func boxesAtConversion(x int) any {
	return any(x) // want `int is boxed into any in hot function boxesAtConversion`
}

// sentinel is a concrete error implementation.
type sentinel struct{}

func (sentinel) Error() string { return "sentinel" }

// boxesAtReturn converts a concrete error implementation to the error
// interface on every call.
//
//cfplint:hot
func boxesAtReturn(fail bool) error {
	if fail {
		return sentinel{} // want `sentinel is boxed into error in hot function boxesAtReturn`
	}
	return nil // predeclared nil: no box
}

// errPassthrough returns an already-interface-typed error: no box.
//
//cfplint:hot
func errPassthrough(err error) error {
	return err
}

// growsUnpresized appends to a slice declared without capacity.
//
//cfplint:hot
func growsUnpresized(xs []int) []int {
	var out []int
	for _, x := range xs {
		if x > 0 {
			out = append(out, x) // want `append grows out inside this loop in hot function growsUnpresized`
		}
	}
	return out
}

// growsEmptyLiteral is the same hole spelled with a literal.
//
//cfplint:hot
func growsEmptyLiteral(xs []int) []int {
	out := []int{}
	for _, x := range xs {
		out = append(out, x) // want `append grows out inside this loop in hot function growsEmptyLiteral`
	}
	return out
}

// growsPresized pre-sizes with make: accepted.
//
//cfplint:hot
func growsPresized(xs []int) []int {
	out := make([]int, 0, len(xs))
	for _, x := range xs {
		out = append(out, x)
	}
	return out
}

// appendsToParam grows a caller-owned slice: the caller chose the
// capacity, so it is not this function's business.
//
//cfplint:hot
func appendsToParam(out []int, xs []int) []int {
	for _, x := range xs {
		out = append(out, x)
	}
	return out
}

// appendOutsideLoop is a single append, not a growth loop.
//
//cfplint:hot
func appendOutsideLoop(x int) []int {
	var out []int
	out = append(out, x)
	return out
}

// assertf mirrors the debugchecks assertion layer.
func assertf(cond bool, format string, args ...any) {
	if !cond {
		panic(format)
	}
}

const debugChecks = false

// assertsAreExempt: assert* calls are compiled out behind the
// constant-false debug gate, so their variadic boxing never runs.
//
//cfplint:hot
func assertsAreExempt(xs []int) int {
	total := 0
	for i, x := range xs {
		if debugChecks {
			assertf(x >= 0, "negative element %d at %d", x, i)
		}
		total += x
	}
	return total
}

// hotLiteralBody: function literals inside a hot function are hot too,
// and returns inside them resolve against the literal's signature.
//
//cfplint:hot
func hotLiteralBody(xs []int) {
	each(xs, func(x int) any {
		return x // want `int is boxed into any in hot function hotLiteralBody`
	})
}

func each(xs []int, fn func(int) any) {
	for _, x := range xs {
		_ = fn(x)
	}
}
