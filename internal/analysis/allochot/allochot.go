// Package allochot guards the allocation discipline of functions
// marked `//cfplint:hot` in their doc comment — the growth and
// conversion inner loops whose per-call allocations dominate the
// memory profile the paper's design exists to shrink. Three patterns
// are flagged inside a hot function:
//
//  1. fmt.* calls: formatting allocates (the format machinery boxes
//     every operand) and belongs outside the hot path.
//  2. Interface boxing: converting a concrete value to an interface
//     at a call argument, assignment, conversion, or return
//     allocates unless the value is pointer-shaped and escapes
//     anyway; hot paths keep values concrete.
//  3. Un-presized append in a loop: growing a slice declared with no
//     capacity (`var x []T`, `x := []T{}`) re-allocates log(n) times;
//     pre-size it with make(..., 0, n) outside the loop.
//
// The marker is a contract, not a heuristic: un-marked functions are
// never checked, and marking a function asserts its loops are hot
// enough that these allocations matter.
package allochot

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"cfpgrowth/internal/analysis"
)

// Analyzer is the allochot rule.
var Analyzer = &analysis.Analyzer{
	Name: "allochot",
	Doc: `forbids fmt calls, interface boxing, and un-presized append
loops inside functions whose doc comment carries //cfplint:hot`,
	Run: run,
}

// marker is the doc-comment line that opts a function in.
const marker = "//cfplint:hot"

func run(pass *analysis.Pass) error {
	for _, fd := range pass.FuncDecls() {
		if !isHot(fd) {
			continue
		}
		checkHot(pass, fd)
	}
	return nil
}

func isHot(fd *ast.FuncDecl) bool {
	if fd.Doc == nil {
		return false
	}
	for _, c := range fd.Doc.List {
		if c.Text == marker {
			return true
		}
	}
	return false
}

func checkHot(pass *analysis.Pass, fd *ast.FuncDecl) {
	name := fd.Name.Name
	sig, _ := pass.TypesInfo.Defs[fd.Name].Type().(*types.Signature)
	analysis.WalkStack(fd.Body, func(n ast.Node, stack []ast.Node) {
		switch n := n.(type) {
		case *ast.CallExpr:
			checkCall(pass, n, name)
		case *ast.AssignStmt:
			checkAssign(pass, fd, n, stack, name)
		case *ast.ReturnStmt:
			checkReturn(pass, sig, n, stack, name)
		case *ast.ValueSpec:
			checkValueSpec(pass, n, name)
		}
	})
}

// checkCall flags fmt calls, boxing at call arguments, and
// conversions to interface types.
func checkCall(pass *analysis.Pass, call *ast.CallExpr, hot string) {
	// Conversion to an interface type: T(x) with interface T.
	if tv, ok := pass.TypesInfo.Types[call.Fun]; ok && tv.IsType() {
		if len(call.Args) == 1 && isBoxing(pass, call.Args[0], tv.Type) {
			reportBoxing(pass, call.Args[0], tv.Type, hot)
		}
		return
	}
	fn := analysis.Callee(pass.TypesInfo, call)
	if fn != nil && strings.HasPrefix(fn.Name(), "assert") {
		// The debugchecks assertion layer: assert* calls sit behind a
		// constant-false gate in default builds, so the compiler
		// eliminates them, boxing and all. Same accommodation as
		// varintbounds' audit rule.
		return
	}
	if fn != nil && fn.Pkg() != nil && fn.Pkg().Path() == "fmt" {
		pass.Reportf(call.Pos(),
			"fmt.%s call in hot function %s: formatting allocates on every call; hoist it out of the hot path",
			fn.Name(), hot)
		return // don't also report the boxing of each operand
	}
	if fn == nil {
		return // dynamic call or builtin: no parameter types to check
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || call.Ellipsis.IsValid() {
		return
	}
	params := sig.Params()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			sl, ok := params.At(params.Len() - 1).Type().(*types.Slice)
			if !ok {
				continue
			}
			pt = sl.Elem()
		case i < params.Len():
			pt = params.At(i).Type()
		default:
			continue
		}
		if isBoxing(pass, arg, pt) {
			reportBoxing(pass, arg, pt, hot)
		}
	}
}

// checkAssign flags boxing on assignment and un-presized appends in
// loops.
func checkAssign(pass *analysis.Pass, fd *ast.FuncDecl, as *ast.AssignStmt, stack []ast.Node, hot string) {
	if len(as.Lhs) == len(as.Rhs) {
		for i := range as.Lhs {
			lt := pass.TypesInfo.TypeOf(as.Lhs[i])
			if lt != nil && isBoxing(pass, as.Rhs[i], lt) {
				reportBoxing(pass, as.Rhs[i], lt, hot)
			}
		}
	}
	if len(as.Lhs) != 1 || len(as.Rhs) != 1 || !inLoop(stack) {
		return
	}
	lhs, ok := ast.Unparen(as.Lhs[0]).(*ast.Ident)
	if !ok {
		return
	}
	call, ok := ast.Unparen(as.Rhs[0]).(*ast.CallExpr)
	if !ok || !isBuiltin(pass, call.Fun, "append") || len(call.Args) == 0 {
		return
	}
	base, ok := ast.Unparen(call.Args[0]).(*ast.Ident)
	if !ok || base.Name != lhs.Name {
		return // appending to a different slice: not the grow-in-place shape
	}
	obj := pass.TypesInfo.ObjectOf(lhs)
	if obj == nil {
		return
	}
	if declaredUnpresized(pass, fd, obj) {
		pass.Reportf(as.Pos(),
			"append grows %s inside this loop in hot function %s, but %s is declared without capacity: pre-size it with make(..., 0, n) outside the loop",
			lhs.Name, hot, lhs.Name)
	}
}

// checkReturn flags boxing into interface-typed results.
func checkReturn(pass *analysis.Pass, sig *types.Signature, ret *ast.ReturnStmt, stack []ast.Node, hot string) {
	// A return inside a function literal converts to the literal's
	// results, not the hot function's; literal bodies are still hot,
	// but their signatures differ — resolve against the innermost one.
	for i := len(stack) - 1; i >= 0; i-- {
		if lit, ok := stack[i].(*ast.FuncLit); ok {
			if t, ok := pass.TypesInfo.TypeOf(lit.Type).(*types.Signature); ok {
				sig = t
			}
			break
		}
	}
	if sig == nil || sig.Results().Len() != len(ret.Results) {
		return
	}
	for i, e := range ret.Results {
		rt := sig.Results().At(i).Type()
		if isBoxing(pass, e, rt) {
			reportBoxing(pass, e, rt, hot)
		}
	}
}

// checkValueSpec flags `var x Iface = concrete`.
func checkValueSpec(pass *analysis.Pass, vs *ast.ValueSpec, hot string) {
	if vs.Type == nil {
		return
	}
	t := pass.TypesInfo.TypeOf(vs.Type)
	if t == nil {
		return
	}
	for _, v := range vs.Values {
		if isBoxing(pass, v, t) {
			reportBoxing(pass, v, t, hot)
		}
	}
}

// isBoxing reports whether storing expr into a destination of type dst
// allocates an interface box: dst is an interface, the value is
// concrete, and it is not the predeclared nil.
func isBoxing(pass *analysis.Pass, expr ast.Expr, dst types.Type) bool {
	if _, ok := dst.(*types.TypeParam); ok {
		return false
	}
	if !types.IsInterface(dst.Underlying()) {
		return false
	}
	tv, ok := pass.TypesInfo.Types[expr]
	if !ok || tv.Type == nil || tv.IsNil() {
		return false
	}
	if _, ok := tv.Type.(*types.TypeParam); ok {
		return false
	}
	return !types.IsInterface(tv.Type.Underlying())
}

func reportBoxing(pass *analysis.Pass, expr ast.Expr, dst types.Type, hot string) {
	pass.Reportf(expr.Pos(),
		"%s is boxed into %s in hot function %s: the conversion allocates; keep hot-path values concrete",
		types.TypeString(pass.TypesInfo.TypeOf(expr), types.RelativeTo(pass.Pkg)),
		types.TypeString(dst, types.RelativeTo(pass.Pkg)), hot)
}

// inLoop reports whether the node whose ancestor stack is given sits
// inside a for or range statement (within the hot function: the stack
// is rooted at its body).
func inLoop(stack []ast.Node) bool {
	for _, n := range stack {
		switch n.(type) {
		case *ast.ForStmt, *ast.RangeStmt:
			return true
		}
	}
	return false
}

func isBuiltin(pass *analysis.Pass, fun ast.Expr, name string) bool {
	id, ok := ast.Unparen(fun).(*ast.Ident)
	if !ok || id.Name != name {
		return false
	}
	_, ok = pass.TypesInfo.Uses[id].(*types.Builtin)
	return ok
}

// declaredUnpresized reports whether obj is declared inside fd with no
// capacity: `var x []T` (no initializer) or an empty composite
// literal. A make of any shape, a non-empty literal, a parameter, or
// a declaration outside fd all count as the caller's business.
func declaredUnpresized(pass *analysis.Pass, fd *ast.FuncDecl, obj types.Object) bool {
	unpresized := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.ValueSpec:
			for i, name := range n.Names {
				if pass.TypesInfo.ObjectOf(name) != obj {
					continue
				}
				if len(n.Values) == 0 {
					unpresized = true // var x []T
				} else if i < len(n.Values) {
					unpresized = isEmptyLiteralOrNil(pass, n.Values[i])
				}
			}
		case *ast.AssignStmt:
			if n.Tok != token.DEFINE {
				return true
			}
			for i, lhs := range n.Lhs {
				id, ok := lhs.(*ast.Ident)
				if !ok || pass.TypesInfo.ObjectOf(id) != obj || i >= len(n.Rhs) {
					continue
				}
				unpresized = isEmptyLiteralOrNil(pass, n.Rhs[i])
			}
		}
		return true
	})
	return unpresized
}

func isEmptyLiteralOrNil(pass *analysis.Pass, e ast.Expr) bool {
	switch e := ast.Unparen(e).(type) {
	case *ast.CompositeLit:
		return len(e.Elts) == 0
	case *ast.Ident:
		tv, ok := pass.TypesInfo.Types[e]
		return ok && tv.IsNil()
	case *ast.CallExpr:
		// A conversion like []T(nil) of the predeclared nil.
		if tv, ok := pass.TypesInfo.Types[e.Fun]; ok && tv.IsType() && len(e.Args) == 1 {
			return isEmptyLiteralOrNil(pass, e.Args[0])
		}
	}
	return false
}
