package allochot

import (
	"testing"

	"cfpgrowth/internal/analysis"
)

func TestFixture(t *testing.T) {
	analysis.RunFixture(t, Analyzer, "testdata")
}
