package arenaescape_test

import (
	"testing"

	"cfpgrowth/internal/analysis"
	"cfpgrowth/internal/analysis/arenaescape"
)

func TestArenaEscape(t *testing.T) {
	analysis.RunFixture(t, arenaescape.Analyzer, "testdata/escape")
}
