// Package escape exercises arenaescape: every escape route out of a
// releasing function (return, global store, channel send, unjoined
// goroutine, retaining callee) is flagged for arena- and pool-derived
// pointers, while borrow-within-cycle, ownership transfer (no release
// in the function), and joined-goroutine shapes certify clean.
package escape

import (
	"sync"

	"cfpgrowth/internal/arena"
)

func use([]byte) {}

// okCycle borrows arena memory strictly inside the cycle: clean.
func okCycle() int {
	a := arena.New()
	a.Reserve(64)
	b := a.Bytes(1, 8)
	n := int(b[0])
	a.Reset()
	return n
}

// leakReturn returns arena memory out of the function that resets the
// arena.
func leakReturn() []byte {
	a := arena.New()
	a.Reserve(64)
	b := a.Bytes(1, 8)
	a.Reset()
	return b // want `arena-backed pointer .* is returned`
}

var leak []byte

// leakGlobal parks arena memory in a global across the reset.
func leakGlobal() {
	a := arena.New()
	a.Reserve(64)
	leak = a.Bytes(1, 8) // want `arena-backed pointer .* stored to a global`
	a.Reset()
}

var ch = make(chan []byte, 1)

// leakSend ships arena memory to another goroutine before resetting.
func leakSend() {
	a := arena.New()
	b := a.Bytes(1, 8)
	ch <- b // want `arena-backed pointer .* sent on a channel`
	a.Reset()
}

// leakSpawn hands arena memory to a goroutine it never joins.
func leakSpawn() {
	a := arena.New()
	b := a.Bytes(1, 8)
	go use(b) // want `arena-backed pointer .* captured by a spawned goroutine`
	a.Reset()
}

// okJoined also spawns with arena memory, but joins before the reset:
// the capture cannot outlive the buffer.
func okJoined(wg *sync.WaitGroup) {
	a := arena.New()
	b := a.Bytes(1, 8)
	wg.Add(1)
	go func() {
		defer wg.Done()
		use(b)
	}()
	wg.Wait()
	a.Reset()
}

// keep retains its argument (Escapes fact: lasting).
func keep(b []byte) { leak = b }

// leakCallee launders the escape through a retaining callee.
func leakCallee() {
	a := arena.New()
	b := a.Bytes(1, 8)
	keep(b) // want `arena-backed pointer .* retained by a callee`
	a.Reset()
}

type buf struct{ p []byte }

var pool = sync.Pool{New: func() interface{} { return new(buf) }}

var kept *buf

// leakPool parks a pooled object in a global and then Puts it back:
// the next Get hands the same object to someone else.
func leakPool() {
	b := pool.Get().(*buf)
	kept = b // want `pool-backed pointer .* stored to a global`
	pool.Put(b)
}

// okTransfer Gets without Putting: ownership moves to the caller, and
// the release happens elsewhere. Not this function's cycle to police.
func okTransfer() *buf {
	return pool.Get().(*buf)
}
