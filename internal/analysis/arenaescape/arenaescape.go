// Package arenaescape proves the repo's recycled memory escape-free:
// no pointer derived from an arena buffer or a pooled object may
// outlive the Reset/Put that recycles it. The arena hands out interior
// offsets whose backing array is reused wholesale on Reset, and
// sync.Pool buffers are handed to the next Get the moment Put returns
// — a pointer that survives either boundary is a use-after-free in
// slow motion: it silently reads (or worse, writes) whatever the next
// cycle put there.
//
// The check rides on pointsto's lifetime regions. Arena accessor
// results and pool Gets are Derived objects rooted at their buffer;
// release sites (Reset receivers, Put arguments, release*-named calls,
// summary PutsParams) resolve to the same roots. A function that
// completes a lifecycle — it has at least one release event — must not
// let any Arena/Pool/Ring-region object rooted at a released buffer
// escape: not by return, not by a store to a global or longer-lived
// region, not by a channel send, not by an unjoined goroutine capture,
// and not by handing it to a callee whose Escapes fact says it retains
// the argument. Functions without a release event are not checked:
// they borrow or transfer ownership, and their caller owns the cycle.
//
// Goroutine captures follow the solver's join discipline: a function
// that calls sync.WaitGroup.Wait collects its spawns before the
// release runs, so those captures are not lasting escapes
// (goroutinesafe checks the Wait pairing itself).
package arenaescape

import (
	"go/token"
	"go/types"

	"cfpgrowth/internal/analysis"
	"cfpgrowth/internal/analysis/pointsto"
	"cfpgrowth/internal/analysis/summary"
)

// Analyzer flags arena/pool-derived pointers escaping their release.
var Analyzer = &analysis.Analyzer{
	Name: "arenaescape",
	Doc: `flags pointers derived from an arena buffer or pooled object that
escape the function releasing them (Reset/Put): the backing memory is
recycled at the release, so any surviving pointer is a use-after-free
waiting for the next cycle`,
	Requires:  []*analysis.Analyzer{pointsto.Analyzer, summary.Analyzer},
	FactTypes: []analysis.Fact{new(summary.Effects), new(pointsto.Points), new(pointsto.Escapes)},
	Run:       run,
}

// recycled is the region set whose backing memory is reused after a
// release event.
const recycled = pointsto.Arena | pointsto.Pool | pointsto.Ring

func run(pass *analysis.Pass) error {
	r := pointsto.ResultOf(pass)
	if r == nil {
		return nil
	}

	escBy := map[*types.Func][]pointsto.Escape{}
	for _, e := range r.Escapes() {
		escBy[e.Fn] = append(escBy[e.Fn], e)
	}

	seen := map[token.Pos]bool{}
	for _, fd := range pass.FuncDecls() {
		fn, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func)
		if !ok {
			continue
		}
		rels := r.Released(fn)
		if len(rels) == 0 {
			continue // no lifecycle completes here; the caller owns it
		}
		released := map[int]bool{}
		relPos := map[token.Pos]bool{}
		for _, rel := range rels {
			relPos[rel.Pos] = true
			for _, o := range rel.Objects {
				released[o.ID] = true
			}
		}
		joins := r.FnJoins(fn)
		for _, e := range escBy[fn] {
			if e.Kind == pointsto.EscSpawn && joins {
				continue // spawns are collected before the release
			}
			if e.Kind == pointsto.EscCallee && relPos[e.Pos] {
				// The releasing call itself retains the value — a pool
				// manager parking the buffer on its free list IS the
				// recycle, not an escape past it.
				continue
			}
			if seen[e.Pos] {
				continue
			}
			for _, o := range r.EscapedObjects(e) {
				if o.Region&recycled == 0 {
					continue
				}
				hit := false
				for _, root := range o.Roots() {
					if released[root] {
						hit = true
						break
					}
				}
				if hit {
					seen[e.Pos] = true
					pass.Reportf(e.Pos, "%s-backed pointer (%s) is %s, but %s releases the backing buffer: the pointer must not outlive its Reset/Put",
						o.Region, o.Label, e.Kind, fn.Name())
					break
				}
			}
		}
	}
	return nil
}
