package experiments

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"cfpgrowth/internal/core"
	"cfpgrowth/internal/dataset"
	"cfpgrowth/internal/mine"
	"cfpgrowth/internal/obs"
)

// BenchSchemaVersion is the schema_version of BENCH_*.json records;
// bump it on incompatible changes (docs/FORMAT.md §6).
const BenchSchemaVersion = 1

// BenchPhase is one phase's aggregate inside a BenchRecord.
type BenchPhase struct {
	// Count is the number of spans folded into the aggregate.
	Count int64 `json:"count"`
	// Millis is the phase's total wall time.
	Millis float64 `json:"millis"`
	// BytesDelta is the summed modeled-byte delta across the spans.
	BytesDelta int64 `json:"bytes_delta"`
}

// BenchRecord is one benchmark run in the BENCH_*.json format: the
// machine-readable counterpart of the run summary cmd/cfpmine prints,
// produced by cmd/experiments -json-out and consumed by plotting and
// regression tooling. Field semantics are documented in docs/FORMAT.md
// §6.
type BenchRecord struct {
	SchemaVersion int     `json:"schema_version"`
	Dataset       string  `json:"dataset"`
	Algo          string  `json:"algo"`
	Scale         int     `json:"scale"`
	RelSupport    float64 `json:"rel_support"`
	AbsSupport    uint64  `json:"abs_support"`
	Transactions  uint64  `json:"transactions"`
	// WallMillis is the end-to-end run wall time; the phase times in
	// Phases sum to approximately (not exactly) this value, the
	// remainder being inter-phase glue such as recoder setup.
	WallMillis float64               `json:"wall_ms"`
	Phases     map[string]BenchPhase `json:"phases"`
	// PeakBytes is the modeled-memory high-water mark of the run's
	// mine.Control ledger (identical to the recorder's by
	// construction: both observe the same allocation stream).
	PeakBytes int64            `json:"peak_bytes"`
	Itemsets  int64            `json:"itemsets"`
	MaxDepth  int64            `json:"max_depth"`
	Counters  map[string]int64 `json:"counters"`
	// GeneratedAt is an RFC 3339 timestamp; empty in deterministic
	// test fixtures.
	GeneratedAt string `json:"generated_at,omitempty"`
}

// BenchOne mines db once with the serial CFP-growth miner under a
// fresh recorder and control and returns the filled record. The
// control's byte ledger and the recorder observe the same allocation
// stream, so record.PeakBytes (taken from the control) equals the
// recorder's high-water mark.
func (c Config) BenchOne(name string, db dataset.Slice, relSup float64) (BenchRecord, error) {
	if err := c.Ctl.Err(); err != nil {
		return BenchRecord{}, err
	}
	counts, err := dataset.CountItems(db)
	if err != nil {
		return BenchRecord{}, err
	}
	absSup := dataset.AbsoluteSupport(relSup, counts.NumTx)
	// A private control keeps the ledger (and its peak) scoped to this
	// run even when the harness shares a Control across experiments.
	ctl := &mine.Control{}
	rec := obs.New(nil)
	g := core.Growth{
		Track: &mine.BudgetTracker{Ctl: ctl},
		Ctl:   ctl,
		Rec:   rec,
	}
	var sink mine.CountSink
	start := time.Now()
	if err := g.Mine(db, absSup, &sink); err != nil {
		return BenchRecord{}, err
	}
	wall := time.Since(start)
	snap := rec.Snapshot()
	r := BenchRecord{
		SchemaVersion: BenchSchemaVersion,
		Dataset:       name,
		Algo:          g.Name(),
		Scale:         c.Scale,
		RelSupport:    relSup,
		AbsSupport:    absSup,
		Transactions:  counts.NumTx,
		WallMillis:    float64(wall) / 1e6,
		Phases:        make(map[string]BenchPhase, len(snap.Phases)),
		PeakBytes:     ctl.PeakBytes(),
		Itemsets:      rec.Count(obs.CtrItemsets),
		MaxDepth:      snap.MaxDepth,
		Counters:      snap.Counters,
		GeneratedAt:   time.Now().UTC().Format(time.RFC3339),
	}
	for name, ps := range snap.Phases {
		r.Phases[name] = BenchPhase{Count: ps.Count, Millis: ps.Millis(), BytesDelta: ps.Bytes}
	}
	return r, nil
}

// BenchAll benchmarks the standard datasets (Quest1 and Quest2 at the
// configured scale) at relative support 0.01 and returns one record
// per dataset.
func (c Config) BenchAll() ([]BenchRecord, error) {
	const relSup = 0.01
	var out []BenchRecord
	for _, d := range []struct {
		name string
		db   dataset.Slice
	}{
		{"quest1", c.Quest1()},
		{"quest2", c.Quest2()},
	} {
		r, err := c.BenchOne(d.name, d.db, relSup)
		if err != nil {
			return nil, fmt.Errorf("bench %s: %w", d.name, err)
		}
		out = append(out, r)
	}
	return out, nil
}

// WriteBenchJSON runs BenchAll and writes each record to
// dir/BENCH_<dataset>.json, returning the paths written.
func (c Config) WriteBenchJSON(dir string) ([]string, error) {
	recs, err := c.BenchAll()
	if err != nil {
		return nil, err
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	var paths []string
	for _, r := range recs {
		path := filepath.Join(dir, fmt.Sprintf("BENCH_%s.json", r.Dataset))
		var buf bytes.Buffer
		enc := json.NewEncoder(&buf)
		enc.SetIndent("", "  ")
		if err := enc.Encode(r); err != nil {
			return nil, err
		}
		if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
			return nil, err
		}
		paths = append(paths, path)
	}
	return paths, nil
}

// ValidateBenchJSON parses and validates one BENCH_*.json file,
// returning the record on success. It is the check CI's bench-smoke
// job runs over freshly generated records.
func ValidateBenchJSON(path string) (BenchRecord, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return BenchRecord{}, err
	}
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var r BenchRecord
	if err := dec.Decode(&r); err != nil {
		return BenchRecord{}, fmt.Errorf("%s: %w", path, err)
	}
	if err := ValidateBenchRecord(r); err != nil {
		return BenchRecord{}, fmt.Errorf("%s: %w", path, err)
	}
	return r, nil
}

// BenchMineRegressionTolerance is the fractional mine-phase slowdown
// CompareBenchRecords tolerates before declaring a regression.
// Mine-phase wall time is the record's headline number (ROADMAP: the
// mine phase dominates end-to-end wall), so it gets the hard gate;
// the other phases are small and noisy enough that gating them would
// only produce flakes.
const BenchMineRegressionTolerance = 0.10

// CompareBenchRecords checks a freshly generated record against a
// committed baseline — the regression gate CI's bench-smoke job runs.
// It fails on:
//
//   - mismatched run identity (dataset, algo) or incomparable
//     parameters (scale, rel_support): the comparison would be
//     meaningless, which should fail loudly rather than pass silently;
//   - an itemset-count mismatch: the generator and miner are both
//     deterministic for fixed parameters, so any difference is a
//     correctness bug, not noise;
//   - an all-zero bytes_delta across every fresh phase: the memory
//     accounting has come unwired from the phase spans (the regression
//     this gate was introduced for — records carried zero deltas while
//     the gauges were charged outside any span);
//   - a mine-phase wall time more than BenchMineRegressionTolerance
//     above the baseline's.
func CompareBenchRecords(fresh, baseline BenchRecord) error {
	if fresh.Dataset != baseline.Dataset || fresh.Algo != baseline.Algo {
		return fmt.Errorf("bench compare: record identity mismatch: fresh %s/%s vs baseline %s/%s",
			fresh.Dataset, fresh.Algo, baseline.Dataset, baseline.Algo)
	}
	if fresh.Scale != baseline.Scale || fresh.RelSupport != baseline.RelSupport {
		return fmt.Errorf("bench compare: incomparable runs: fresh scale %d ξ %v vs baseline scale %d ξ %v",
			fresh.Scale, fresh.RelSupport, baseline.Scale, baseline.RelSupport)
	}
	if fresh.Itemsets != baseline.Itemsets {
		return fmt.Errorf("bench compare: %s: %d itemsets, baseline %d — deterministic run diverged",
			fresh.Dataset, fresh.Itemsets, baseline.Itemsets)
	}
	anyDelta := false
	for _, p := range fresh.Phases {
		if p.BytesDelta != 0 {
			anyDelta = true
			break
		}
	}
	if !anyDelta {
		return fmt.Errorf("bench compare: %s: every phase has bytes_delta 0 — memory accounting is unwired from the phase spans",
			fresh.Dataset)
	}
	fm, ok := fresh.Phases[obs.PhaseMine]
	if !ok {
		return fmt.Errorf("bench compare: %s: fresh record has no mine phase", fresh.Dataset)
	}
	bm, ok := baseline.Phases[obs.PhaseMine]
	if !ok {
		return fmt.Errorf("bench compare: %s: baseline record has no mine phase", fresh.Dataset)
	}
	if limit := bm.Millis * (1 + BenchMineRegressionTolerance); fm.Millis > limit {
		return fmt.Errorf("bench compare: %s: mine phase %.1f ms exceeds baseline %.1f ms by more than %.0f%%",
			fresh.Dataset, fm.Millis, bm.Millis, 100*BenchMineRegressionTolerance)
	}
	return nil
}

// ValidateBenchRecord checks a record's internal consistency: schema
// version, required fields, and that the recorded phase times sum to
// no more than the total wall time (they nest inside it) while
// covering most of it.
func ValidateBenchRecord(r BenchRecord) error {
	if r.SchemaVersion != BenchSchemaVersion {
		return fmt.Errorf("bench: schema_version %d, want %d", r.SchemaVersion, BenchSchemaVersion)
	}
	if r.Dataset == "" || r.Algo == "" {
		return fmt.Errorf("bench: dataset and algo are required")
	}
	if r.Transactions == 0 {
		return fmt.Errorf("bench: transactions is zero")
	}
	if r.AbsSupport == 0 {
		return fmt.Errorf("bench: abs_support is zero")
	}
	if r.PeakBytes <= 0 {
		return fmt.Errorf("bench: peak_bytes %d, want > 0", r.PeakBytes)
	}
	if r.Itemsets <= 0 {
		return fmt.Errorf("bench: itemsets %d, want > 0", r.Itemsets)
	}
	if r.WallMillis <= 0 {
		return fmt.Errorf("bench: wall_ms %v, want > 0", r.WallMillis)
	}
	if len(r.Phases) == 0 {
		return fmt.Errorf("bench: no phases recorded")
	}
	var phaseSum float64
	for name, p := range r.Phases {
		if p.Millis < 0 {
			return fmt.Errorf("bench: phase %s has negative time", name)
		}
		if name != obs.PhaseStats { // stats walks overlap other phases
			phaseSum += p.Millis
		}
	}
	// Phases nest inside the wall clock; tolerate 5% measurement slop.
	if phaseSum > r.WallMillis*1.05 {
		return fmt.Errorf("bench: phase sum %.2f ms exceeds wall %.2f ms", phaseSum, r.WallMillis)
	}
	return nil
}
