package experiments

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"time"

	"cfpgrowth/internal/core"
	"cfpgrowth/internal/dataset"
	"cfpgrowth/internal/mine"
	"cfpgrowth/internal/obs"
)

// BenchSchemaVersion is the schema_version of freshly generated
// BENCH_*.json records; bump it on incompatible changes (docs/FORMAT.md
// §6). Version 2 added latency percentiles, the mine-pool balance
// summary, and GC totals; version-1 records remain readable (the added
// fields are all optional) but are never generated anymore.
const BenchSchemaVersion = 2

// benchSchemaV1 is the pre-percentile schema still accepted on read,
// so old committed baselines keep validating.
const benchSchemaV1 = 1

// Fixed mine-pool shape of every benchmark run: the committed records
// carry per-shard balance, which is only comparable across runs when
// the pool geometry is pinned rather than inherited from the host's
// GOMAXPROCS.
const (
	benchWorkers = 4
	benchShards  = 8
)

// BenchPhase is one phase's aggregate inside a BenchRecord.
type BenchPhase struct {
	// Count is the number of spans folded into the aggregate.
	Count int64 `json:"count"`
	// Millis is the phase's total wall time.
	Millis float64 `json:"millis"`
	// BytesDelta is the summed modeled-byte delta across the spans.
	BytesDelta int64 `json:"bytes_delta"`
}

// BenchRecord is one benchmark run in the BENCH_*.json format: the
// machine-readable counterpart of the run summary cmd/cfpmine prints,
// produced by cmd/experiments -json-out and consumed by plotting and
// regression tooling. Field semantics are documented in docs/FORMAT.md
// §6.
type BenchRecord struct {
	SchemaVersion int     `json:"schema_version"`
	Dataset       string  `json:"dataset"`
	Algo          string  `json:"algo"`
	Scale         int     `json:"scale"`
	RelSupport    float64 `json:"rel_support"`
	AbsSupport    uint64  `json:"abs_support"`
	Transactions  uint64  `json:"transactions"`
	// WallMillis is the end-to-end run wall time; the phase times in
	// Phases sum to approximately (not exactly) this value, the
	// remainder being inter-phase glue such as recoder setup.
	WallMillis float64               `json:"wall_ms"`
	Phases     map[string]BenchPhase `json:"phases"`
	// PeakBytes is the modeled-memory high-water mark of the run's
	// mine.Control ledger (identical to the recorder's by
	// construction: both observe the same allocation stream).
	PeakBytes int64            `json:"peak_bytes"`
	Itemsets  int64            `json:"itemsets"`
	MaxDepth  int64            `json:"max_depth"`
	Counters  map[string]int64 `json:"counters"`
	// GeneratedAt is an RFC 3339 timestamp; empty in deterministic
	// test fixtures.
	GeneratedAt string `json:"generated_at,omitempty"`

	// Schema-v2 fields. All optional on read, so version-1 records
	// decode into the same struct (DisallowUnknownFields only rejects
	// extra JSON fields, never missing ones).

	// Hists holds the run's latency distributions by histogram name
	// ("cond_mine" is one sample per conditional subproblem, "query"
	// one per Mine call), with log2-bucket percentile estimates.
	Hists map[string]BenchHist `json:"hists,omitempty"`
	// MinePool summarizes the sharded mine pool's load balance.
	MinePool *BenchPool `json:"mine_pool,omitempty"`
	// GC carries the run's garbage-collection deltas.
	GC *BenchGC `json:"gc,omitempty"`
}

// BenchHist is one latency histogram's summary inside a v2 record.
// Percentiles are log2-bucket estimates (obs.Histogram), not exact
// order statistics.
type BenchHist struct {
	Count     int64   `json:"count"`
	P50Millis float64 `json:"p50_ms"`
	P95Millis float64 `json:"p95_ms"`
	P99Millis float64 `json:"p99_ms"`
}

// BenchShard is one mine-pool shard's accounting inside a v2 record.
type BenchShard struct {
	Queue      int64   `json:"queue"`
	Jobs       int64   `json:"jobs"`
	Steals     int64   `json:"steals"`
	StealFails int64   `json:"steal_fails"`
	BusyMillis float64 `json:"busy_ms"`
}

// BenchPool is the v2 record's mine-pool balance summary.
type BenchPool struct {
	Workers int          `json:"workers"`
	Shards  []BenchShard `json:"shards"`
	// JobsTotal and StealsTotal sum the per-shard columns; kept
	// denormalized so dashboards need no re-aggregation.
	JobsTotal   int64 `json:"jobs_total"`
	StealsTotal int64 `json:"steals_total"`
	// BusyImbalance is max/mean of per-shard busy time (1.0 = perfectly
	// balanced); the shard-balance number CI gates on.
	BusyImbalance float64 `json:"busy_imbalance"`
}

// BenchGC is the v2 record's garbage-collection delta across the mine
// call, from runtime.ReadMemStats before and after.
type BenchGC struct {
	Cycles      int64   `json:"cycles"`
	PauseMillis float64 `json:"pause_ms"`
	AllocBytes  uint64  `json:"alloc_bytes"`
}

// poolFromStats folds the recorder's mine-pool shard stats into the
// record's balance summary; nil when no pool ran.
func poolFromStats(workers int, shards []obs.ShardStat) *BenchPool {
	if len(shards) == 0 {
		return nil
	}
	p := &BenchPool{Workers: workers, Shards: make([]BenchShard, len(shards))}
	var busySum, busyMax float64
	for i, s := range shards {
		busy := float64(s.BusyNanos) / 1e6
		p.Shards[i] = BenchShard{
			Queue:      s.Queue,
			Jobs:       s.Jobs,
			Steals:     s.Steals,
			StealFails: s.StealFails,
			BusyMillis: busy,
		}
		p.JobsTotal += s.Jobs
		p.StealsTotal += s.Steals
		busySum += busy
		if busy > busyMax {
			busyMax = busy
		}
	}
	if busySum > 0 {
		p.BusyImbalance = busyMax * float64(len(shards)) / busySum
	}
	return p
}

// BenchOne mines db once with the sharded CFP-growth miner (fixed
// benchWorkers/benchShards pool, so the per-shard balance summary is
// comparable across runs) under a fresh recorder and control and
// returns the filled schema-v2 record. The control's byte ledger and
// the recorder observe the same allocation stream, so record.PeakBytes
// (taken from the control) equals the recorder's high-water mark.
func (c Config) BenchOne(name string, db dataset.Slice, relSup float64) (BenchRecord, error) {
	if err := c.Ctl.Err(); err != nil {
		return BenchRecord{}, err
	}
	counts, err := dataset.CountItems(db)
	if err != nil {
		return BenchRecord{}, err
	}
	absSup := dataset.AbsoluteSupport(relSup, counts.NumTx)
	// A private control keeps the ledger (and its peak) scoped to this
	// run even when the harness shares a Control across experiments.
	ctl := &mine.Control{}
	rec := obs.New(nil)
	g := core.ParallelGrowth{
		Workers: benchWorkers,
		Shards:  benchShards,
		Track:   &mine.BudgetTracker{Ctl: ctl},
		Ctl:     ctl,
		Rec:     rec,
	}
	var sink mine.CountSink
	var ms0, ms1 runtime.MemStats
	runtime.ReadMemStats(&ms0)
	start := time.Now()
	if err := g.Mine(db, absSup, &sink); err != nil {
		return BenchRecord{}, err
	}
	wall := time.Since(start)
	runtime.ReadMemStats(&ms1)
	snap := rec.Snapshot()
	r := BenchRecord{
		SchemaVersion: BenchSchemaVersion,
		Dataset:       name,
		Algo:          g.Name(),
		Scale:         c.Scale,
		RelSupport:    relSup,
		AbsSupport:    absSup,
		Transactions:  counts.NumTx,
		WallMillis:    float64(wall) / 1e6,
		Phases:        make(map[string]BenchPhase, len(snap.Phases)),
		PeakBytes:     ctl.PeakBytes(),
		Itemsets:      rec.Count(obs.CtrItemsets),
		MaxDepth:      snap.MaxDepth,
		Counters:      snap.Counters,
		GeneratedAt:   time.Now().UTC().Format(time.RFC3339),
		Hists:         make(map[string]BenchHist, len(snap.Hists)),
		MinePool:      poolFromStats(benchWorkers, snap.Shards),
		GC: &BenchGC{
			Cycles:      int64(ms1.NumGC) - int64(ms0.NumGC),
			PauseMillis: float64(ms1.PauseTotalNs-ms0.PauseTotalNs) / 1e6,
			AllocBytes:  ms1.TotalAlloc - ms0.TotalAlloc,
		},
	}
	for name, ps := range snap.Phases {
		r.Phases[name] = BenchPhase{Count: ps.Count, Millis: ps.Millis(), BytesDelta: ps.Bytes}
	}
	for name, hs := range snap.Hists {
		r.Hists[name] = BenchHist{
			Count:     hs.Count,
			P50Millis: float64(hs.P50Nanos) / 1e6,
			P95Millis: float64(hs.P95Nanos) / 1e6,
			P99Millis: float64(hs.P99Nanos) / 1e6,
		}
	}
	return r, nil
}

// BenchAll benchmarks the standard datasets (Quest1 and Quest2 at the
// configured scale) at relative support 0.01 and returns one record
// per dataset.
func (c Config) BenchAll() ([]BenchRecord, error) {
	const relSup = 0.01
	var out []BenchRecord
	for _, d := range []struct {
		name string
		db   dataset.Slice
	}{
		{"quest1", c.Quest1()},
		{"quest2", c.Quest2()},
	} {
		r, err := c.BenchOne(d.name, d.db, relSup)
		if err != nil {
			return nil, fmt.Errorf("bench %s: %w", d.name, err)
		}
		out = append(out, r)
	}
	return out, nil
}

// WriteBenchJSON runs BenchAll and writes each record to
// dir/BENCH_<dataset>.json, returning the paths written.
func (c Config) WriteBenchJSON(dir string) ([]string, error) {
	recs, err := c.BenchAll()
	if err != nil {
		return nil, err
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	var paths []string
	for _, r := range recs {
		path := filepath.Join(dir, fmt.Sprintf("BENCH_%s.json", r.Dataset))
		var buf bytes.Buffer
		enc := json.NewEncoder(&buf)
		enc.SetIndent("", "  ")
		if err := enc.Encode(r); err != nil {
			return nil, err
		}
		if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
			return nil, err
		}
		paths = append(paths, path)
	}
	return paths, nil
}

// ValidateBenchJSON parses and validates one BENCH_*.json file,
// returning the record on success. It is the check CI's bench-smoke
// job runs over freshly generated records.
func ValidateBenchJSON(path string) (BenchRecord, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return BenchRecord{}, err
	}
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var r BenchRecord
	if err := dec.Decode(&r); err != nil {
		return BenchRecord{}, fmt.Errorf("%s: %w", path, err)
	}
	if err := ValidateBenchRecord(r); err != nil {
		return BenchRecord{}, fmt.Errorf("%s: %w", path, err)
	}
	return r, nil
}

// BenchMineRegressionTolerance is the fractional mine-phase slowdown
// CompareBenchRecords tolerates before declaring a regression.
// Mine-phase wall time is the record's headline number (ROADMAP: the
// mine phase dominates end-to-end wall), so it gets the hard gate;
// the other phases are small and noisy enough that gating them would
// only produce flakes.
const BenchMineRegressionTolerance = 0.10

// BenchP99RegressionTolerance is the fractional conditional-mine p99
// slowdown CompareBenchRecords tolerates between two v2 records. The
// tail is far noisier than the phase total (one slow conditional
// subproblem moves it), so the tolerance is wide, and an absolute
// 1 ms floor below keeps microsecond-scale baselines from flaking.
const BenchP99RegressionTolerance = 0.50

// benchImbalanceFloor is the busy-imbalance ceiling CompareBenchRecords
// always allows regardless of baseline: max/mean per-shard busy under
// this is healthy stealing territory, not a scheduling regression.
const benchImbalanceFloor = 2.5

// CompareBenchRecords checks a freshly generated record against a
// committed baseline — the regression gate CI's bench-smoke job runs.
// It fails on:
//
//   - mismatched run identity (dataset, algo) or incomparable
//     parameters (scale, rel_support): the comparison would be
//     meaningless, which should fail loudly rather than pass silently;
//   - an itemset-count mismatch: the generator and miner are both
//     deterministic for fixed parameters, so any difference is a
//     correctness bug, not noise;
//   - an all-zero bytes_delta across every fresh phase: the memory
//     accounting has come unwired from the phase spans (the regression
//     this gate was introduced for — records carried zero deltas while
//     the gauges were charged outside any span);
//   - a mine-phase wall time more than BenchMineRegressionTolerance
//     above the baseline's;
//   - mixed schema versions: a v1 baseline has no percentiles or
//     balance summary to gate against, so comparing it with a v2 fresh
//     record would silently skip the v2 gates — regenerate the baseline
//     instead (a clear error here, never a degraded zero-compare);
//   - between two v2 records, a conditional-mine p99 more than
//     BenchP99RegressionTolerance above the baseline's (with a 1 ms
//     absolute floor), or a per-shard busy imbalance above both
//     2x the baseline's and benchImbalanceFloor.
func CompareBenchRecords(fresh, baseline BenchRecord) error {
	if err := ValidateBenchRecord(fresh); err != nil {
		return fmt.Errorf("bench compare: fresh record invalid: %w", err)
	}
	if err := ValidateBenchRecord(baseline); err != nil {
		return fmt.Errorf("bench compare: baseline record invalid: %w", err)
	}
	if fresh.SchemaVersion != baseline.SchemaVersion {
		return fmt.Errorf("bench compare: schema version mismatch: fresh v%d vs baseline v%d — regenerate the baseline with the current harness (cmd/experiments -json-out) instead of comparing across schema versions",
			fresh.SchemaVersion, baseline.SchemaVersion)
	}
	if fresh.Dataset != baseline.Dataset || fresh.Algo != baseline.Algo {
		return fmt.Errorf("bench compare: record identity mismatch: fresh %s/%s vs baseline %s/%s",
			fresh.Dataset, fresh.Algo, baseline.Dataset, baseline.Algo)
	}
	if fresh.Scale != baseline.Scale || fresh.RelSupport != baseline.RelSupport {
		return fmt.Errorf("bench compare: incomparable runs: fresh scale %d ξ %v vs baseline scale %d ξ %v",
			fresh.Scale, fresh.RelSupport, baseline.Scale, baseline.RelSupport)
	}
	if fresh.Itemsets != baseline.Itemsets {
		return fmt.Errorf("bench compare: %s: %d itemsets, baseline %d — deterministic run diverged",
			fresh.Dataset, fresh.Itemsets, baseline.Itemsets)
	}
	anyDelta := false
	for _, p := range fresh.Phases {
		if p.BytesDelta != 0 {
			anyDelta = true
			break
		}
	}
	if !anyDelta {
		return fmt.Errorf("bench compare: %s: every phase has bytes_delta 0 — memory accounting is unwired from the phase spans",
			fresh.Dataset)
	}
	fm, ok := fresh.Phases[obs.PhaseMine]
	if !ok {
		return fmt.Errorf("bench compare: %s: fresh record has no mine phase", fresh.Dataset)
	}
	bm, ok := baseline.Phases[obs.PhaseMine]
	if !ok {
		return fmt.Errorf("bench compare: %s: baseline record has no mine phase", fresh.Dataset)
	}
	if limit := bm.Millis * (1 + BenchMineRegressionTolerance); fm.Millis > limit {
		return fmt.Errorf("bench compare: %s: mine phase %.1f ms exceeds baseline %.1f ms by more than %.0f%%",
			fresh.Dataset, fm.Millis, bm.Millis, 100*BenchMineRegressionTolerance)
	}
	if fresh.SchemaVersion >= 2 {
		// v2-only gates: conditional-mine tail latency and shard balance.
		fh, ok := fresh.Hists[obs.HistCondMine.String()]
		if !ok {
			return fmt.Errorf("bench compare: %s: fresh record has no %s histogram", fresh.Dataset, obs.HistCondMine)
		}
		bh, ok := baseline.Hists[obs.HistCondMine.String()]
		if !ok {
			return fmt.Errorf("bench compare: %s: baseline record has no %s histogram", fresh.Dataset, obs.HistCondMine)
		}
		limit := bh.P99Millis * (1 + BenchP99RegressionTolerance)
		if floor := bh.P99Millis + 1.0; limit < floor {
			limit = floor
		}
		if fh.P99Millis > limit {
			return fmt.Errorf("bench compare: %s: %s p99 %.2f ms exceeds baseline %.2f ms beyond tolerance (limit %.2f ms)",
				fresh.Dataset, obs.HistCondMine, fh.P99Millis, bh.P99Millis, limit)
		}
		if fresh.MinePool != nil && baseline.MinePool != nil {
			limit := 2 * baseline.MinePool.BusyImbalance
			if limit < benchImbalanceFloor {
				limit = benchImbalanceFloor
			}
			if fresh.MinePool.BusyImbalance > limit {
				return fmt.Errorf("bench compare: %s: shard busy imbalance %.2f exceeds limit %.2f (baseline %.2f)",
					fresh.Dataset, fresh.MinePool.BusyImbalance, limit, baseline.MinePool.BusyImbalance)
			}
		}
	}
	return nil
}

// ValidateBenchRecord checks a record's internal consistency: schema
// version, required fields, and that the recorded phase times sum to
// no more than the total wall time (they nest inside it). Version-1
// records (committed baselines predating the percentile fields) pass
// the shared checks only; version-2 records must additionally carry a
// well-formed conditional-mine histogram, mine-pool summary, and GC
// delta.
func ValidateBenchRecord(r BenchRecord) error {
	if r.SchemaVersion != benchSchemaV1 && r.SchemaVersion != BenchSchemaVersion {
		return fmt.Errorf("bench: schema_version %d, want %d or %d", r.SchemaVersion, benchSchemaV1, BenchSchemaVersion)
	}
	if r.Dataset == "" || r.Algo == "" {
		return fmt.Errorf("bench: dataset and algo are required")
	}
	if r.Transactions == 0 {
		return fmt.Errorf("bench: transactions is zero")
	}
	if r.AbsSupport == 0 {
		return fmt.Errorf("bench: abs_support is zero")
	}
	if r.PeakBytes <= 0 {
		return fmt.Errorf("bench: peak_bytes %d, want > 0", r.PeakBytes)
	}
	if r.Itemsets <= 0 {
		return fmt.Errorf("bench: itemsets %d, want > 0", r.Itemsets)
	}
	if r.WallMillis <= 0 {
		return fmt.Errorf("bench: wall_ms %v, want > 0", r.WallMillis)
	}
	if len(r.Phases) == 0 {
		return fmt.Errorf("bench: no phases recorded")
	}
	var phaseSum float64
	for name, p := range r.Phases {
		if p.Millis < 0 {
			return fmt.Errorf("bench: phase %s has negative time", name)
		}
		if name != obs.PhaseStats { // stats walks overlap other phases
			phaseSum += p.Millis
		}
	}
	// Phases nest inside the wall clock; tolerate 5% measurement slop.
	if phaseSum > r.WallMillis*1.05 {
		return fmt.Errorf("bench: phase sum %.2f ms exceeds wall %.2f ms", phaseSum, r.WallMillis)
	}
	if r.SchemaVersion < 2 {
		return nil
	}
	h, ok := r.Hists[obs.HistCondMine.String()]
	if !ok {
		return fmt.Errorf("bench: v2 record lacks the %s histogram", obs.HistCondMine)
	}
	if h.Count <= 0 {
		return fmt.Errorf("bench: %s histogram has no samples", obs.HistCondMine)
	}
	if h.P50Millis < 0 || h.P50Millis > h.P95Millis || h.P95Millis > h.P99Millis {
		return fmt.Errorf("bench: %s percentiles not monotonic: p50 %.3f p95 %.3f p99 %.3f",
			obs.HistCondMine, h.P50Millis, h.P95Millis, h.P99Millis)
	}
	if r.MinePool == nil || len(r.MinePool.Shards) == 0 {
		return fmt.Errorf("bench: v2 record lacks the mine-pool summary")
	}
	var jobs int64
	for _, s := range r.MinePool.Shards {
		jobs += s.Jobs
	}
	if jobs != r.MinePool.JobsTotal || jobs <= 0 {
		return fmt.Errorf("bench: mine-pool jobs_total %d does not match per-shard sum %d (or is zero)",
			r.MinePool.JobsTotal, jobs)
	}
	if r.MinePool.BusyImbalance < 1.0 {
		return fmt.Errorf("bench: mine-pool busy_imbalance %.3f below 1.0 (max/mean cannot be)", r.MinePool.BusyImbalance)
	}
	if r.GC == nil {
		return fmt.Errorf("bench: v2 record lacks the gc section")
	}
	if r.GC.Cycles < 0 || r.GC.PauseMillis < 0 {
		return fmt.Errorf("bench: gc deltas negative (cycles %d, pause %.3f ms)", r.GC.Cycles, r.GC.PauseMillis)
	}
	return nil
}
