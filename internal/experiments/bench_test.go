package experiments

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"cfpgrowth/internal/obs"
)

// benchConfig is small enough for unit tests.
func benchConfig() Config {
	return Config{Scale: 20000, Quick: true}.WithDefaults()
}

func TestBenchOneRecord(t *testing.T) {
	c := benchConfig()
	r, err := c.BenchOne("quest1", c.Quest1(), 0.01)
	if err != nil {
		t.Fatal(err)
	}
	if err := ValidateBenchRecord(r); err != nil {
		t.Fatalf("fresh record invalid: %v", err)
	}
	if r.Dataset != "quest1" || r.Algo != "cfpgrowth" {
		t.Errorf("identity = %s/%s", r.Dataset, r.Algo)
	}
	for _, want := range []string{obs.PhasePass1, obs.PhaseBuild, obs.PhaseMine} {
		if _, ok := r.Phases[want]; !ok {
			t.Errorf("phase %q missing from %v", want, r.Phases)
		}
	}
	if r.Counters["itemsets"] != r.Itemsets {
		t.Errorf("counters[itemsets] = %d, itemsets field = %d", r.Counters["itemsets"], r.Itemsets)
	}
	if r.MaxDepth == 0 {
		t.Error("max_depth = 0, want conditional recursion observed")
	}
}

func TestWriteAndValidateBenchJSON(t *testing.T) {
	c := benchConfig()
	dir := t.TempDir()
	paths, err := c.WriteBenchJSON(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) != 2 {
		t.Fatalf("wrote %d files, want 2", len(paths))
	}
	for _, p := range paths {
		base := filepath.Base(p)
		if !strings.HasPrefix(base, "BENCH_") || !strings.HasSuffix(base, ".json") {
			t.Errorf("unexpected file name %s", base)
		}
		r, err := ValidateBenchJSON(p)
		if err != nil {
			t.Errorf("%s: %v", p, err)
			continue
		}
		if r.SchemaVersion != BenchSchemaVersion {
			t.Errorf("%s: schema %d", p, r.SchemaVersion)
		}
	}
}

func TestValidateBenchJSONRejects(t *testing.T) {
	dir := t.TempDir()
	write := func(name, body string) string {
		p := filepath.Join(dir, name)
		if err := os.WriteFile(p, []byte(body), 0o644); err != nil {
			t.Fatal(err)
		}
		return p
	}
	for _, tc := range []struct {
		name, body, wantErr string
	}{
		{"unknown-field.json", `{"schema_version":1,"bogus":true}`, "bogus"},
		{"bad-version.json", `{"schema_version":99,"dataset":"d","algo":"a"}`, "schema_version"},
		{"not-json.json", `{`, "unexpected"},
		{"empty-run.json", `{"schema_version":1,"dataset":"d","algo":"a","transactions":0}`, "transactions"},
	} {
		_, err := ValidateBenchJSON(write(tc.name, tc.body))
		if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
			t.Errorf("%s: err = %v, want substring %q", tc.name, err, tc.wantErr)
		}
	}
}

// TestBenchRecordBytesDeltaWired is the regression test for the
// accounting bug where every phase's bytes_delta was zero: the ledger
// charges happened outside the phase spans, so records carried peak
// memory but no per-phase attribution. Fresh records must charge the
// build phases positive deltas and the mine phase a negative one (it
// frees the CFP-array at the end).
func TestBenchRecordBytesDeltaWired(t *testing.T) {
	c := benchConfig()
	r, err := c.BenchOne("quest1", c.Quest1(), 0.01)
	if err != nil {
		t.Fatal(err)
	}
	for _, phase := range []string{obs.PhasePass1, obs.PhaseBuild, obs.PhaseConvert} {
		p, ok := r.Phases[phase]
		if !ok {
			t.Fatalf("phase %q missing", phase)
		}
		if p.BytesDelta <= 0 {
			t.Errorf("phase %q bytes_delta = %d, want > 0", phase, p.BytesDelta)
		}
	}
	if p := r.Phases[obs.PhaseMine]; p.BytesDelta >= 0 {
		t.Errorf("mine bytes_delta = %d, want < 0 (frees the CFP-array)", p.BytesDelta)
	}
	// Every charge is balanced by a free (the ledger tests assert
	// Cur == 0), but one free lands between spans: the count table is
	// released in the recoder-setup glue after pass1 ends. The phase
	// deltas therefore sum to exactly the pass1 charge — anything else
	// means a charge has drifted out of its span.
	var sum int64
	for _, p := range r.Phases {
		sum += p.BytesDelta
	}
	if want := r.Phases[obs.PhasePass1].BytesDelta; sum != want {
		t.Errorf("phase bytes_delta sum = %d, want %d (the count table released between spans)", sum, want)
	}
}

func TestCompareBenchRecords(t *testing.T) {
	mk := func() BenchRecord {
		return BenchRecord{
			SchemaVersion: BenchSchemaVersion,
			Dataset:       "quest1", Algo: "cfpgrowth",
			Scale: 1000, RelSupport: 0.01,
			Transactions: 10, AbsSupport: 2,
			PeakBytes: 1, Itemsets: 42, WallMillis: 100,
			Phases: map[string]BenchPhase{
				obs.PhaseMine:  {Count: 1, Millis: 80, BytesDelta: -5},
				obs.PhaseBuild: {Count: 1, Millis: 10, BytesDelta: 5},
			},
		}
	}
	base := mk()
	if err := CompareBenchRecords(mk(), base); err != nil {
		t.Fatalf("identical records rejected: %v", err)
	}
	// Inside tolerance: 10% exactly.
	r := mk()
	r.Phases[obs.PhaseMine] = BenchPhase{Count: 1, Millis: 88, BytesDelta: -5}
	if err := CompareBenchRecords(r, base); err != nil {
		t.Errorf("10%% slowdown rejected: %v", err)
	}
	for _, tc := range []struct {
		name    string
		mut     func(*BenchRecord)
		wantErr string
	}{
		{"mine-regression", func(r *BenchRecord) {
			r.Phases[obs.PhaseMine] = BenchPhase{Count: 1, Millis: 95, BytesDelta: -5}
		}, "exceeds baseline"},
		{"all-zero-bytes-delta", func(r *BenchRecord) {
			r.Phases[obs.PhaseMine] = BenchPhase{Count: 1, Millis: 80}
			r.Phases[obs.PhaseBuild] = BenchPhase{Count: 1, Millis: 10}
		}, "bytes_delta 0"},
		{"itemset-divergence", func(r *BenchRecord) { r.Itemsets = 41 }, "diverged"},
		{"scale-mismatch", func(r *BenchRecord) { r.Scale = 500 }, "incomparable"},
		{"identity-mismatch", func(r *BenchRecord) { r.Dataset = "quest2" }, "identity"},
	} {
		r := mk()
		tc.mut(&r)
		err := CompareBenchRecords(r, base)
		if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
			t.Errorf("%s: err = %v, want substring %q", tc.name, err, tc.wantErr)
		}
	}
}

func TestValidateBenchRecordPhaseSum(t *testing.T) {
	r := BenchRecord{
		SchemaVersion: BenchSchemaVersion,
		Dataset:       "d", Algo: "a",
		Transactions: 10, AbsSupport: 2,
		PeakBytes: 1, Itemsets: 1,
		WallMillis: 10,
		Phases: map[string]BenchPhase{
			obs.PhaseMine: {Count: 1, Millis: 50}, // 5x the wall clock
		},
	}
	if err := ValidateBenchRecord(r); err == nil {
		t.Error("phase sum exceeding wall time not rejected")
	}
	r.Phases[obs.PhaseMine] = BenchPhase{Count: 1, Millis: 9}
	if err := ValidateBenchRecord(r); err != nil {
		t.Errorf("consistent record rejected: %v", err)
	}
}
