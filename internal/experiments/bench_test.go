package experiments

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"cfpgrowth/internal/obs"
)

// benchConfig is small enough for unit tests.
func benchConfig() Config {
	return Config{Scale: 20000, Quick: true}.WithDefaults()
}

func TestBenchOneRecord(t *testing.T) {
	c := benchConfig()
	r, err := c.BenchOne("quest1", c.Quest1(), 0.01)
	if err != nil {
		t.Fatal(err)
	}
	if err := ValidateBenchRecord(r); err != nil {
		t.Fatalf("fresh record invalid: %v", err)
	}
	if r.Dataset != "quest1" || r.Algo != "cfpgrowth" {
		t.Errorf("identity = %s/%s", r.Dataset, r.Algo)
	}
	for _, want := range []string{obs.PhasePass1, obs.PhaseBuild, obs.PhaseMine} {
		if _, ok := r.Phases[want]; !ok {
			t.Errorf("phase %q missing from %v", want, r.Phases)
		}
	}
	if r.Counters["itemsets"] != r.Itemsets {
		t.Errorf("counters[itemsets] = %d, itemsets field = %d", r.Counters["itemsets"], r.Itemsets)
	}
	if r.MaxDepth == 0 {
		t.Error("max_depth = 0, want conditional recursion observed")
	}
}

func TestWriteAndValidateBenchJSON(t *testing.T) {
	c := benchConfig()
	dir := t.TempDir()
	paths, err := c.WriteBenchJSON(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) != 2 {
		t.Fatalf("wrote %d files, want 2", len(paths))
	}
	for _, p := range paths {
		base := filepath.Base(p)
		if !strings.HasPrefix(base, "BENCH_") || !strings.HasSuffix(base, ".json") {
			t.Errorf("unexpected file name %s", base)
		}
		r, err := ValidateBenchJSON(p)
		if err != nil {
			t.Errorf("%s: %v", p, err)
			continue
		}
		if r.SchemaVersion != BenchSchemaVersion {
			t.Errorf("%s: schema %d", p, r.SchemaVersion)
		}
	}
}

func TestValidateBenchJSONRejects(t *testing.T) {
	dir := t.TempDir()
	write := func(name, body string) string {
		p := filepath.Join(dir, name)
		if err := os.WriteFile(p, []byte(body), 0o644); err != nil {
			t.Fatal(err)
		}
		return p
	}
	for _, tc := range []struct {
		name, body, wantErr string
	}{
		{"unknown-field.json", `{"schema_version":1,"bogus":true}`, "bogus"},
		{"bad-version.json", `{"schema_version":99,"dataset":"d","algo":"a"}`, "schema_version"},
		{"not-json.json", `{`, "unexpected"},
		{"empty-run.json", `{"schema_version":1,"dataset":"d","algo":"a","transactions":0}`, "transactions"},
	} {
		_, err := ValidateBenchJSON(write(tc.name, tc.body))
		if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
			t.Errorf("%s: err = %v, want substring %q", tc.name, err, tc.wantErr)
		}
	}
}

func TestValidateBenchRecordPhaseSum(t *testing.T) {
	r := BenchRecord{
		SchemaVersion: BenchSchemaVersion,
		Dataset:       "d", Algo: "a",
		Transactions: 10, AbsSupport: 2,
		PeakBytes: 1, Itemsets: 1,
		WallMillis: 10,
		Phases: map[string]BenchPhase{
			obs.PhaseMine: {Count: 1, Millis: 50}, // 5x the wall clock
		},
	}
	if err := ValidateBenchRecord(r); err == nil {
		t.Error("phase sum exceeding wall time not rejected")
	}
	r.Phases[obs.PhaseMine] = BenchPhase{Count: 1, Millis: 9}
	if err := ValidateBenchRecord(r); err != nil {
		t.Errorf("consistent record rejected: %v", err)
	}
}
