package experiments

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"cfpgrowth/internal/obs"
)

// benchConfig is small enough for unit tests.
func benchConfig() Config {
	return Config{Scale: 20000, Quick: true}.WithDefaults()
}

func TestBenchOneRecord(t *testing.T) {
	c := benchConfig()
	r, err := c.BenchOne("quest1", c.Quest1(), 0.01)
	if err != nil {
		t.Fatal(err)
	}
	if err := ValidateBenchRecord(r); err != nil {
		t.Fatalf("fresh record invalid: %v", err)
	}
	if r.Dataset != "quest1" || r.Algo != "cfpgrowth-par" {
		t.Errorf("identity = %s/%s", r.Dataset, r.Algo)
	}
	if r.SchemaVersion != 2 {
		t.Errorf("schema_version = %d, want 2", r.SchemaVersion)
	}
	h, ok := r.Hists[obs.HistCondMine.String()]
	if !ok || h.Count == 0 {
		t.Errorf("cond_mine histogram missing or empty: %+v", r.Hists)
	}
	if q, ok := r.Hists[obs.HistQuery.String()]; !ok || q.Count != 1 {
		t.Errorf("query histogram = %+v, want exactly one sample", q)
	}
	if r.MinePool == nil || len(r.MinePool.Shards) != benchShards {
		t.Fatalf("mine pool = %+v, want %d shards", r.MinePool, benchShards)
	}
	if r.MinePool.JobsTotal == 0 || r.MinePool.BusyImbalance < 1.0 {
		t.Errorf("mine pool jobs_total = %d, busy_imbalance = %.3f",
			r.MinePool.JobsTotal, r.MinePool.BusyImbalance)
	}
	if r.GC == nil {
		t.Error("gc section missing")
	}
	for _, want := range []string{obs.PhasePass1, obs.PhaseBuild, obs.PhaseMine} {
		if _, ok := r.Phases[want]; !ok {
			t.Errorf("phase %q missing from %v", want, r.Phases)
		}
	}
	if r.Counters["itemsets"] != r.Itemsets {
		t.Errorf("counters[itemsets] = %d, itemsets field = %d", r.Counters["itemsets"], r.Itemsets)
	}
	if r.MaxDepth == 0 {
		t.Error("max_depth = 0, want conditional recursion observed")
	}
}

func TestWriteAndValidateBenchJSON(t *testing.T) {
	c := benchConfig()
	dir := t.TempDir()
	paths, err := c.WriteBenchJSON(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) != 2 {
		t.Fatalf("wrote %d files, want 2", len(paths))
	}
	for _, p := range paths {
		base := filepath.Base(p)
		if !strings.HasPrefix(base, "BENCH_") || !strings.HasSuffix(base, ".json") {
			t.Errorf("unexpected file name %s", base)
		}
		r, err := ValidateBenchJSON(p)
		if err != nil {
			t.Errorf("%s: %v", p, err)
			continue
		}
		if r.SchemaVersion != BenchSchemaVersion {
			t.Errorf("%s: schema %d", p, r.SchemaVersion)
		}
	}
}

func TestValidateBenchJSONRejects(t *testing.T) {
	dir := t.TempDir()
	write := func(name, body string) string {
		p := filepath.Join(dir, name)
		if err := os.WriteFile(p, []byte(body), 0o644); err != nil {
			t.Fatal(err)
		}
		return p
	}
	for _, tc := range []struct {
		name, body, wantErr string
	}{
		{"unknown-field.json", `{"schema_version":1,"bogus":true}`, "bogus"},
		{"bad-version.json", `{"schema_version":99,"dataset":"d","algo":"a"}`, "schema_version"},
		{"not-json.json", `{`, "unexpected"},
		{"empty-run.json", `{"schema_version":1,"dataset":"d","algo":"a","transactions":0}`, "transactions"},
	} {
		_, err := ValidateBenchJSON(write(tc.name, tc.body))
		if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
			t.Errorf("%s: err = %v, want substring %q", tc.name, err, tc.wantErr)
		}
	}
}

// TestBenchRecordBytesDeltaWired is the regression test for the
// accounting bug where every phase's bytes_delta was zero: the ledger
// charges happened outside the phase spans, so records carried peak
// memory but no per-phase attribution. Fresh records must charge the
// build phases positive deltas and the mine phase a negative one (it
// frees the CFP-array at the end).
func TestBenchRecordBytesDeltaWired(t *testing.T) {
	c := benchConfig()
	r, err := c.BenchOne("quest1", c.Quest1(), 0.01)
	if err != nil {
		t.Fatal(err)
	}
	for _, phase := range []string{obs.PhasePass1, obs.PhaseBuild, obs.PhaseConvert} {
		p, ok := r.Phases[phase]
		if !ok {
			t.Fatalf("phase %q missing", phase)
		}
		if p.BytesDelta <= 0 {
			t.Errorf("phase %q bytes_delta = %d, want > 0", phase, p.BytesDelta)
		}
	}
	if p := r.Phases[obs.PhaseMine]; p.BytesDelta >= 0 {
		t.Errorf("mine bytes_delta = %d, want < 0 (frees the CFP-array)", p.BytesDelta)
	}
	// Every charge is balanced by a free (the ledger tests assert
	// Cur == 0), but one free lands between spans: the count table is
	// released in the recoder-setup glue after pass1 ends. The phase
	// deltas therefore sum to exactly the pass1 charge — anything else
	// means a charge has drifted out of its span.
	var sum int64
	for _, p := range r.Phases {
		sum += p.BytesDelta
	}
	if want := r.Phases[obs.PhasePass1].BytesDelta; sum != want {
		t.Errorf("phase bytes_delta sum = %d, want %d (the count table released between spans)", sum, want)
	}
}

// mkBenchV1 is a minimal valid schema-v1 record, the shape of committed
// baselines predating the percentile fields.
func mkBenchV1() BenchRecord {
	return BenchRecord{
		SchemaVersion: benchSchemaV1,
		Dataset:       "quest1", Algo: "cfpgrowth",
		Scale: 1000, RelSupport: 0.01,
		Transactions: 10, AbsSupport: 2,
		PeakBytes: 1, Itemsets: 42, WallMillis: 100,
		Phases: map[string]BenchPhase{
			obs.PhaseMine:  {Count: 1, Millis: 80, BytesDelta: -5},
			obs.PhaseBuild: {Count: 1, Millis: 10, BytesDelta: 5},
		},
	}
}

// mkBenchV2 is a minimal valid schema-v2 record.
func mkBenchV2() BenchRecord {
	r := mkBenchV1()
	r.SchemaVersion = BenchSchemaVersion
	r.Algo = "cfpgrowth-par"
	r.Hists = map[string]BenchHist{
		obs.HistCondMine.String(): {Count: 100, P50Millis: 0.5, P95Millis: 2, P99Millis: 4},
		obs.HistQuery.String():    {Count: 1, P50Millis: 100, P95Millis: 100, P99Millis: 100},
	}
	r.MinePool = &BenchPool{
		Workers: 2,
		Shards: []BenchShard{
			{Queue: 5, Jobs: 5, BusyMillis: 40},
			{Queue: 5, Jobs: 5, Steals: 2, BusyMillis: 38},
		},
		JobsTotal: 10, StealsTotal: 2, BusyImbalance: 1.03,
	}
	r.GC = &BenchGC{Cycles: 3, PauseMillis: 0.2, AllocBytes: 1 << 20}
	return r
}

func TestCompareBenchRecords(t *testing.T) {
	for _, mk := range []func() BenchRecord{mkBenchV1, mkBenchV2} {
		base := mk()
		if err := CompareBenchRecords(mk(), base); err != nil {
			t.Fatalf("identical v%d records rejected: %v", base.SchemaVersion, err)
		}
		// Inside tolerance: 10% exactly.
		r := mk()
		r.Phases[obs.PhaseMine] = BenchPhase{Count: 1, Millis: 88, BytesDelta: -5}
		if err := CompareBenchRecords(r, base); err != nil {
			t.Errorf("v%d 10%% slowdown rejected: %v", base.SchemaVersion, err)
		}
		for _, tc := range []struct {
			name    string
			mut     func(*BenchRecord)
			wantErr string
		}{
			{"mine-regression", func(r *BenchRecord) {
				r.Phases[obs.PhaseMine] = BenchPhase{Count: 1, Millis: 95, BytesDelta: -5}
			}, "exceeds baseline"},
			{"all-zero-bytes-delta", func(r *BenchRecord) {
				r.Phases[obs.PhaseMine] = BenchPhase{Count: 1, Millis: 80}
				r.Phases[obs.PhaseBuild] = BenchPhase{Count: 1, Millis: 10}
			}, "bytes_delta 0"},
			{"itemset-divergence", func(r *BenchRecord) { r.Itemsets = 41 }, "diverged"},
			{"scale-mismatch", func(r *BenchRecord) { r.Scale = 500 }, "incomparable"},
			{"identity-mismatch", func(r *BenchRecord) { r.Dataset = "quest2" }, "identity"},
		} {
			r := mk()
			tc.mut(&r)
			err := CompareBenchRecords(r, base)
			if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
				t.Errorf("v%d %s: err = %v, want substring %q", base.SchemaVersion, tc.name, err, tc.wantErr)
			}
		}
	}
}

// TestCompareBenchRecordsMixedVersions pins the mixed-version contract:
// a v2 fresh record against a v1 baseline (and vice versa) is a clear,
// named error — never a zero-compare that silently skips the v2 gates.
func TestCompareBenchRecordsMixedVersions(t *testing.T) {
	v1, v2 := mkBenchV1(), mkBenchV2()
	// Align identity so only the schema version differs.
	v1.Algo = v2.Algo
	for _, tc := range []struct{ fresh, baseline BenchRecord }{
		{v2, v1},
		{v1, v2},
	} {
		err := CompareBenchRecords(tc.fresh, tc.baseline)
		if err == nil {
			t.Fatalf("v%d fresh vs v%d baseline accepted, want schema mismatch error",
				tc.fresh.SchemaVersion, tc.baseline.SchemaVersion)
		}
		if !strings.Contains(err.Error(), "schema version mismatch") ||
			!strings.Contains(err.Error(), "regenerate the baseline") {
			t.Errorf("mixed-version error not actionable: %v", err)
		}
	}
}

// TestCompareBenchRecordsV2Gates exercises the v2-only gates: the
// conditional-mine p99 regression and the shard busy-imbalance ceiling.
func TestCompareBenchRecordsV2Gates(t *testing.T) {
	base := mkBenchV2()
	// p99 within the wide tolerance: 1.5x plus the 1 ms floor.
	r := mkBenchV2()
	r.Hists[obs.HistCondMine.String()] = BenchHist{Count: 100, P50Millis: 0.5, P95Millis: 2, P99Millis: 5.9}
	if err := CompareBenchRecords(r, base); err != nil {
		t.Errorf("p99 within tolerance rejected: %v", err)
	}
	r.Hists[obs.HistCondMine.String()] = BenchHist{Count: 100, P50Millis: 0.5, P95Millis: 2, P99Millis: 6.2}
	if err := CompareBenchRecords(r, base); err == nil || !strings.Contains(err.Error(), "p99") {
		t.Errorf("p99 regression err = %v, want p99 gate", err)
	}
	// A microsecond-scale baseline gets the absolute floor, not the
	// fraction: 0.01 ms -> 0.5 ms must still pass.
	tiny := mkBenchV2()
	tiny.Hists[obs.HistCondMine.String()] = BenchHist{Count: 100, P50Millis: 0.001, P95Millis: 0.005, P99Millis: 0.01}
	fresh := mkBenchV2()
	fresh.Hists[obs.HistCondMine.String()] = BenchHist{Count: 100, P50Millis: 0.001, P95Millis: 0.005, P99Millis: 0.5}
	if err := CompareBenchRecords(fresh, tiny); err != nil {
		t.Errorf("sub-floor p99 jitter rejected: %v", err)
	}
	// Imbalance: the ceiling is max(2x baseline, the absolute floor).
	r = mkBenchV2()
	r.MinePool.BusyImbalance = 2.4
	if err := CompareBenchRecords(r, base); err != nil {
		t.Errorf("imbalance under floor rejected: %v", err)
	}
	r.MinePool.BusyImbalance = 2.6
	if err := CompareBenchRecords(r, base); err == nil || !strings.Contains(err.Error(), "imbalance") {
		t.Errorf("imbalance err = %v, want imbalance gate", err)
	}
}

func TestValidateBenchRecordPhaseSum(t *testing.T) {
	r := BenchRecord{
		SchemaVersion: benchSchemaV1, // shared checks apply to both versions
		Dataset:       "d", Algo: "a",
		Transactions: 10, AbsSupport: 2,
		PeakBytes: 1, Itemsets: 1,
		WallMillis: 10,
		Phases: map[string]BenchPhase{
			obs.PhaseMine: {Count: 1, Millis: 50}, // 5x the wall clock
		},
	}
	if err := ValidateBenchRecord(r); err == nil {
		t.Error("phase sum exceeding wall time not rejected")
	}
	r.Phases[obs.PhaseMine] = BenchPhase{Count: 1, Millis: 9}
	if err := ValidateBenchRecord(r); err != nil {
		t.Errorf("consistent record rejected: %v", err)
	}
}
