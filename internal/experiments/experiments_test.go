package experiments

import (
	"bytes"
	"strings"
	"testing"
)

// testConfig is tiny: 1/20000-scale datasets so the whole suite runs in
// seconds.
func testConfig() Config {
	return Config{Scale: 20000, Quick: true}.WithDefaults()
}

func TestDefaults(t *testing.T) {
	c := Config{}.WithDefaults()
	if c.Scale != 1000 {
		t.Errorf("default scale = %d", c.Scale)
	}
	if c.MemBudget != 48<<20 {
		t.Errorf("default budget = %d, want 48 MiB", c.MemBudget)
	}
	c2 := Config{Scale: 4000}.WithDefaults()
	if c2.MemBudget != 12<<20 {
		t.Errorf("scaled budget = %d, want 12 MiB", c2.MemBudget)
	}
}

func TestSupportSweep(t *testing.T) {
	full := Config{}.WithDefaults().SupportSweep()
	quick := Config{Quick: true}.WithDefaults().SupportSweep()
	if len(full) <= len(quick) {
		t.Error("full sweep not longer than quick sweep")
	}
	for i := 1; i < len(full); i++ {
		if full[i] >= full[i-1] {
			t.Error("sweep not strictly decreasing")
		}
	}
}

func TestTable1(t *testing.T) {
	r, err := testConfig().Table1()
	if err != nil {
		t.Fatal(err)
	}
	if r.Nodes == 0 {
		t.Fatal("no nodes analyzed")
	}
	if r.Table.ZeroByteShare < 0.3 {
		t.Errorf("zero-byte share %.2f unexpectedly low", r.Table.ZeroByteShare)
	}
	var buf bytes.Buffer
	r.Print(&buf)
	if !strings.Contains(buf.String(), "nodelink") {
		t.Error("Table 1 output missing field rows")
	}
}

func TestTable2(t *testing.T) {
	r, err := testConfig().Table2()
	if err != nil {
		t.Fatal(err)
	}
	if r.Stats.Pcount.Percent(4)+r.Stats.Pcount.Percent(3) < 80 {
		t.Errorf("pcount small-value share too low: %+v", r.Stats.Pcount)
	}
	var buf bytes.Buffer
	r.Print(&buf)
	if !strings.Contains(buf.String(), "pcount") {
		t.Error("Table 2 output missing pcount row")
	}
}

func TestTable3(t *testing.T) {
	rows, err := testConfig().Table3()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("got %d rows, want 2", len(rows))
	}
	if rows[1].NumTx != 2*rows[0].NumTx {
		t.Errorf("quest2 tx %d != 2x quest1 %d", rows[1].NumTx, rows[0].NumTx)
	}
	var buf bytes.Buffer
	PrintTable3(&buf, rows)
	if !strings.Contains(buf.String(), "quest1") {
		t.Error("Table 3 output missing rows")
	}
}

func TestFig6(t *testing.T) {
	rows, err := testConfig().Fig6()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) < 5 {
		t.Fatalf("only %d rows", len(rows))
	}
	for _, r := range rows {
		if r.TreeAvgNode <= 0 || r.TreeAvgNode > 28 {
			t.Errorf("%s/%s: tree avg node %.2f outside (0,28]", r.Dataset, r.SupportLevel, r.TreeAvgNode)
		}
		if r.ArrayAvgNode <= 0 || r.ArrayAvgNode > 15 {
			t.Errorf("%s/%s: array avg node %.2f outside (0,15]", r.Dataset, r.SupportLevel, r.ArrayAvgNode)
		}
	}
	var buf bytes.Buffer
	PrintFig6(&buf, rows)
	if !strings.Contains(buf.String(), "6(b)") {
		t.Error("Fig 6 output missing panel (b)")
	}
}

func TestFig7ShapesHold(t *testing.T) {
	cfg := testConfig()
	rows, err := cfg.Fig7()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) == 0 {
		t.Fatal("no rows")
	}
	for _, r := range rows {
		// The paper's headline: CFP build memory well below FP's.
		if r.CFPBuildBytes >= r.FPBuildBytes {
			t.Errorf("ξ=%.3f: CFP build bytes %d not below FP %d", r.RelSupport, r.CFPBuildBytes, r.FPBuildBytes)
		}
		if r.CFPPeakBytes >= r.FPPeakBytes {
			t.Errorf("ξ=%.3f: CFP peak %d not below FP %d", r.RelSupport, r.CFPPeakBytes, r.FPPeakBytes)
		}
		if r.Itemsets == 0 {
			t.Errorf("ξ=%.3f: no itemsets found", r.RelSupport)
		}
	}
	// Tree size grows as support shrinks.
	for i := 1; i < len(rows); i++ {
		if rows[i].Nodes < rows[i-1].Nodes {
			t.Errorf("tree size not monotone: %d then %d", rows[i-1].Nodes, rows[i].Nodes)
		}
	}
	var buf bytes.Buffer
	PrintFig7(&buf, rows, cfg)
	for _, panel := range []string{"(a)", "(b)", "(c)", "(d)"} {
		if !strings.Contains(buf.String(), panel) {
			t.Errorf("Fig 7 output missing panel %s", panel)
		}
	}
}

func TestFig8ShapesHold(t *testing.T) {
	cfg := testConfig()
	res, err := cfg.Fig8a()
	if err != nil {
		t.Fatal(err)
	}
	// Every algorithm at every support must agree on the itemset count.
	byRel := map[float64]uint64{}
	for _, c := range res.Cells {
		if want, ok := byRel[c.RelSupport]; ok {
			if c.Itemsets != want {
				t.Errorf("ξ=%.3f: %s found %d itemsets, others %d", c.RelSupport, c.Algorithm, c.Itemsets, want)
			}
		} else {
			byRel[c.RelSupport] = c.Itemsets
		}
	}
	// CFP-growth must have the smallest peak at the lowest support.
	rel := res.Cells[len(res.Cells)-1].RelSupport
	var cfp int64 = -1
	minOther := int64(1) << 62
	for _, c := range res.Cells {
		if c.RelSupport != rel {
			continue
		}
		if c.Algorithm == "cfpgrowth" {
			cfp = c.PeakBytes
		} else if c.PeakBytes < minOther {
			minOther = c.PeakBytes
		}
	}
	if cfp <= 0 || cfp >= minOther {
		t.Errorf("cfpgrowth peak %d not below all competitors (min other %d)", cfp, minOther)
	}
	var buf bytes.Buffer
	res.Print(&buf, cfg)
	if !strings.Contains(buf.String(), "peak memory") {
		t.Error("Fig 8 output missing memory panel")
	}
}

func TestAblation(t *testing.T) {
	rows, err := testConfig().Ablation()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 6 {
		t.Fatalf("got %d rows, want 6", len(rows))
	}
	byName := map[string]AblationRow{}
	for _, r := range rows {
		byName[r.Name] = r
		if r.Nodes == 0 || r.Bytes == 0 {
			t.Errorf("row %q empty", r.Name)
		}
	}
	full := byName["full (paper settings)"]
	noChains := byName["no chain nodes"]
	if noChains.AvgNodeSize <= full.AvgNodeSize {
		t.Errorf("disabling chains did not increase node size: %.2f vs %.2f",
			noChains.AvgNodeSize, full.AvgNodeSize)
	}
	var buf bytes.Buffer
	PrintAblation(&buf, rows)
	if !strings.Contains(buf.String(), "chains") {
		t.Error("ablation output missing rows")
	}
}

func TestArrayVsDirect(t *testing.T) {
	rows, err := testConfig().ArrayVsDirect()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("got %d rows", len(rows))
	}
	if rows[0].Itemsets != rows[1].Itemsets {
		t.Errorf("array and direct disagree: %d vs %d itemsets", rows[0].Itemsets, rows[1].Itemsets)
	}
	var buf bytes.Buffer
	PrintArrayVsDirect(&buf, rows)
	if !strings.Contains(buf.String(), "slowdown") {
		t.Error("comparison output incomplete")
	}
}
