package experiments

import (
	"io"
	"time"

	"cfpgrowth/internal/arena"
	"cfpgrowth/internal/core"
	"cfpgrowth/internal/dataset"
	"cfpgrowth/internal/mine"
	"cfpgrowth/internal/quest"
	"cfpgrowth/internal/synth"
)

// AblationRow is one CFP-tree configuration measured on the
// chain-friendly webdocs-like workload (DESIGN.md §5).
type AblationRow struct {
	Name        string
	Nodes       int
	Bytes       int64
	AvgNodeSize float64
	BuildTime   time.Duration
	StdNodes, ChainNodes, EmbeddedLeaves int
}

// Ablation measures the contribution of each compression feature.
func (c Config) Ablation() ([]AblationRow, error) {
	c = c.WithDefaults()
	p, _ := synth.ByName("webdocs")
	db := p.Generate(c.Scale)
	counts, err := dataset.CountItems(db)
	if err != nil {
		return nil, err
	}
	minSup := dataset.AbsoluteSupport(0.10, counts.NumTx)
	rec := dataset.NewRecoder(counts, minSup)
	n := rec.NumFrequent()
	names := make([]uint32, n)
	sups := make([]uint64, n)
	for i := 0; i < n; i++ {
		names[i] = rec.Decode(uint32(i))
		sups[i] = rec.Support(uint32(i))
	}
	cfgs := []struct {
		name string
		cfg  core.Config
	}{
		{"full (paper settings)", core.Config{}},
		{"no chain nodes", core.Config{DisableChains: true}},
		{"no embedded leaves", core.Config{DisableEmbed: true}},
		{"neither", core.Config{DisableChains: true, DisableEmbed: true}},
		{"chains capped at 4", core.Config{MaxChainLen: 4}},
		{"chains up to 63", core.Config{MaxChainLen: 63}},
	}
	a := arena.New()
	var rows []AblationRow
	for _, cc := range cfgs {
		a.Reset()
		tree := core.NewTree(a, cc.cfg, names, sups)
		t0 := time.Now()
		var buf []uint32
		err := db.Scan(func(tx []uint32) error {
			buf = rec.Encode(tx, buf[:0])
			tree.Insert(buf, 1)
			return nil
		})
		if err != nil {
			return nil, err
		}
		elapsed := time.Since(t0)
		row := AblationRow{
			Name:      cc.name,
			Nodes:     tree.NumNodes(),
			Bytes:     tree.Bytes(),
			BuildTime: elapsed,
		}
		row.StdNodes, row.ChainNodes, row.EmbeddedLeaves = tree.PhysNodes()
		if row.Nodes > 0 {
			row.AvgNodeSize = float64(row.Bytes) / float64(row.Nodes)
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// PrintAblation writes the feature-contribution table.
func PrintAblation(w io.Writer, rows []AblationRow) {
	fprintf(w, "Ablation: CFP-tree features on webdocs-like data, ξ=10%% (DESIGN.md §5)\n")
	fprintf(w, "%-24s %8s %10s %8s %9s %8s %8s %8s\n",
		"configuration", "nodes", "bytes", "B/node", "build", "std", "chains", "embed")
	for _, r := range rows {
		fprintf(w, "%-24s %8d %10d %8.2f %8.0fms %8d %8d %8d\n",
			r.Name, r.Nodes, r.Bytes, r.AvgNodeSize,
			float64(r.BuildTime.Microseconds())/1000,
			r.StdNodes, r.ChainNodes, r.EmbeddedLeaves)
	}
}

// ArrayVsDirectRow compares conditioning via the CFP-array against
// conditioning by full tree walks (the no-conversion ablation).
type ArrayVsDirectRow struct {
	Name     string
	Time     time.Duration
	Itemsets uint64
}

// ArrayVsDirect measures the CFP-array's raison d'être on Quest-shaped
// data with many frequent items.
func (c Config) ArrayVsDirect() ([]ArrayVsDirectRow, error) {
	c = c.WithDefaults()
	db := dataset.Slice(quest.Generate(quest.Config{
		NumTx:    4000,
		AvgTxLen: 30,
		NumItems: 2000,
		Seed:     12,
	}))
	counts, err := dataset.CountItems(db)
	if err != nil {
		return nil, err
	}
	minSup := dataset.AbsoluteSupport(0.01, counts.NumTx)
	var rows []ArrayVsDirectRow
	run := func(name string, m mine.Miner) error {
		var sink mine.CountSink
		t0 := time.Now()
		if err := m.Mine(db, minSup, &sink); err != nil {
			return err
		}
		rows = append(rows, ArrayVsDirectRow{Name: name, Time: time.Since(t0), Itemsets: sink.N})
		return nil
	}
	if err := run("CFP-array (paper)", core.Growth{MaxLen: 3}); err != nil {
		return nil, err
	}
	if err := run("direct tree walks", core.DirectGrowth{MaxLen: 3}); err != nil {
		return nil, err
	}
	return rows, nil
}

// PrintArrayVsDirect writes the comparison.
func PrintArrayVsDirect(w io.Writer, rows []ArrayVsDirectRow) {
	fprintf(w, "Conversion ablation: conditioning via CFP-array vs full tree walks (itemsets ≤ 3)\n")
	for _, r := range rows {
		fprintf(w, "  %-20s %8.2fs (%d itemsets)\n", r.Name, seconds(r.Time), r.Itemsets)
	}
	if len(rows) == 2 && rows[0].Time > 0 {
		fprintf(w, "  slowdown without the CFP-array: %.1fx\n",
			float64(rows[1].Time)/float64(rows[0].Time))
	}
}
