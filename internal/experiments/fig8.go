package experiments

import (
	"io"
	"time"

	"cfpgrowth/internal/algo"
	"cfpgrowth/internal/core"
	"cfpgrowth/internal/dataset"
	"cfpgrowth/internal/mine"
	"cfpgrowth/internal/vm"
)

// Fig8Cell is one (algorithm, support) measurement.
type Fig8Cell struct {
	Algorithm  string
	RelSupport float64
	Total      time.Duration // measured + modeled paging penalty
	Measured   time.Duration
	PeakBytes  int64
	Itemsets   uint64
	Regime     int // 1 in-core, 2 working set fits, 3 thrashing
}

// Fig8Result is one panel: a sweep for a set of algorithms.
type Fig8Result struct {
	Panel      string
	Dataset    string
	Algorithms []string
	Cells      []Fig8Cell
}

// Fig8a compares CFP-growth with the FP-growth-variant algorithms
// (CT-pro-, FP-growth-Tiny- and FP-array-style) on Quest1; Fig8b is
// the memory view of the same runs.
func (c Config) Fig8a() (Fig8Result, error) {
	c = c.WithDefaults()
	return c.runFig8("8(a)/(b)", "quest1", []string{"cfpgrowth", "ctpro", "tiny", "fparray"})
}

// Fig8c compares CFP-growth with the best FIMI algorithms (nonordfp-,
// LCM- and AFOPT-style) on Quest1.
func (c Config) Fig8c() (Fig8Result, error) {
	c = c.WithDefaults()
	return c.runFig8("8(c)", "quest1", []string{"cfpgrowth", "nonordfp", "eclat", "afopt"})
}

// Fig8d repeats Fig8c on Quest2 (twice the transactions), where LCM's
// transaction-proportional memory breaks down first.
func (c Config) Fig8d() (Fig8Result, error) {
	c = c.WithDefaults()
	return c.runFig8("8(d)", "quest2", []string{"cfpgrowth", "nonordfp", "eclat", "afopt"})
}

func (c Config) runFig8(panel, ds string, algos []string) (Fig8Result, error) {
	db := c.questData(ds)
	model := c.Model()
	counts, err := dataset.CountItems(db)
	if err != nil {
		return Fig8Result{}, err
	}
	res := Fig8Result{Panel: panel, Dataset: ds, Algorithms: algos}
	for _, rel := range c.SupportSweep() {
		minSup := dataset.AbsoluteSupport(rel, counts.NumTx)
		for _, name := range algos {
			if err := c.Ctl.Err(); err != nil {
				return Fig8Result{}, err
			}
			var track vm.Tracker
			var t mine.MemTracker = &track
			if c.Ctl != nil {
				t = &mine.BudgetTracker{Inner: t, Ctl: c.Ctl}
			}
			var m mine.Miner
			if name == "cfpgrowth" {
				// Fig 8 reproduces the paper's memory claims, so
				// CFP-growth runs in the paper's configuration: the
				// flat-decode accelerator postdates the paper's design
				// and deliberately trades modeled memory for speed
				// (its scratch is charged to the tracker), which is
				// measured by the bench harness, not this figure.
				m = core.Growth{
					Config: core.Config{DisableFlatDecode: true},
					Track:  t,
					Ctl:    c.Ctl,
				}
			} else {
				var err error
				m, err = algo.New(name, t, c.Ctl)
				if err != nil {
					return Fig8Result{}, err
				}
			}
			var sink mine.CountSink
			t0 := time.Now()
			if err := m.Mine(db, minSup, &sink); err != nil {
				return Fig8Result{}, err
			}
			measured := time.Since(t0)
			res.Cells = append(res.Cells, Fig8Cell{
				Algorithm:  name,
				RelSupport: rel,
				Measured:   measured,
				Total:      measured + model.MinePenalty(&track),
				PeakBytes:  track.Peak,
				Itemsets:   sink.N,
				Regime:     model.Regime(track.Peak),
			})
		}
	}
	return res, nil
}

// Print writes a time panel and a memory panel for the result.
func (r Fig8Result) Print(w io.Writer, c Config) {
	c = c.WithDefaults()
	fprintf(w, "Figure %s on %s (budget %.0f MiB): total time [s] (+modeled paging)\n",
		r.Panel, r.Dataset, mib(c.MemBudget))
	fprintf(w, "%7s", "ξ%")
	for _, a := range r.Algorithms {
		fprintf(w, " %14s", a)
	}
	fprintf(w, "\n")
	for _, rel := range sweepOf(r) {
		fprintf(w, "%6.2f%%", 100*rel)
		for _, a := range r.Algorithms {
			cell := r.cell(a, rel)
			fprintf(w, " %13.2fs", seconds(cell.Total))
		}
		fprintf(w, "\n")
	}
	fprintf(w, "\npeak memory [MiB] (regime: ¹in-core ²working-set ³thrashing)\n")
	fprintf(w, "%7s", "ξ%")
	for _, a := range r.Algorithms {
		fprintf(w, " %14s", a)
	}
	fprintf(w, "\n")
	sup := []string{"", "¹", "²", "³"}
	for _, rel := range sweepOf(r) {
		fprintf(w, "%6.2f%%", 100*rel)
		for _, a := range r.Algorithms {
			cell := r.cell(a, rel)
			fprintf(w, " %13.2f%s", mib(cell.PeakBytes), sup[cell.Regime])
		}
		fprintf(w, "\n")
	}
}

func sweepOf(r Fig8Result) []float64 {
	var out []float64
	seen := map[float64]bool{}
	for _, c := range r.Cells {
		if !seen[c.RelSupport] {
			seen[c.RelSupport] = true
			out = append(out, c.RelSupport)
		}
	}
	return out
}

func (r Fig8Result) cell(algoName string, rel float64) Fig8Cell {
	for _, c := range r.Cells {
		if c.Algorithm == algoName && c.RelSupport == rel {
			return c
		}
	}
	return Fig8Cell{}
}
