// Package experiments regenerates every table and figure of the
// paper's evaluation (§4) at laptop scale. Each experiment returns
// typed rows and can print them in the paper's format; cmd/experiments
// and the root bench suite are thin wrappers around this package.
//
// Scaling: datasets are generated at a configurable scale divisor
// (default 1000: Quest1 becomes 25k transactions instead of 25M), and
// the 6 GB physical-memory machine becomes a modeled budget sized so
// the out-of-core crossovers land inside the sweep (see internal/vm and
// DESIGN.md §2, substitution 3).
package experiments

import (
	"fmt"
	"io"
	"time"

	"cfpgrowth/internal/arena"
	"cfpgrowth/internal/core"
	"cfpgrowth/internal/dataset"
	"cfpgrowth/internal/fptree"
	"cfpgrowth/internal/mine"
	"cfpgrowth/internal/quest"
	"cfpgrowth/internal/vm"
)

// Config scales the experiments.
type Config struct {
	// Scale is the dataset scale divisor (default 1000).
	Scale int
	// MemBudget is the modeled physical memory (default 8 MiB at the
	// default scale — the analogue of the paper's 6 GB).
	MemBudget int64
	// Quick trims sweeps for smoke runs.
	Quick bool
	// Ctl, when non-nil, lets a harness bound the runs: the mining
	// sweeps (Figure 8) and the build benchmarks (Figure 7) poll it
	// and abort with its stop cause — cmd/experiments arms it from
	// -timeout and -max-bytes.
	Ctl *mine.Control
}

// WithDefaults fills in unset fields.
func (c Config) WithDefaults() Config {
	if c.Scale <= 0 {
		c.Scale = 1000
	}
	if c.MemBudget <= 0 {
		// Sized so the FP-growth baseline crosses out of core in the
		// middle of the support sweep, like the paper's 6 GB machine
		// did: 48 MiB at the default 1/1000 scale.
		c.MemBudget = int64(48<<20) * 1000 / int64(c.Scale)
		if c.MemBudget < 4<<20 {
			c.MemBudget = 4 << 20
		}
	}
	return c
}

// Model returns the paging model for this configuration.
func (c Config) Model() vm.Model { return vm.Default(c.MemBudget) }

// SupportSweep is the relative minimum-support grid used in Figures 7
// and 8, mirroring the paper's ξ range (4.0% down to 0.8%).
func (c Config) SupportSweep() []float64 {
	if c.Quick {
		return []float64{0.04, 0.024, 0.012}
	}
	return []float64{0.040, 0.036, 0.032, 0.028, 0.024, 0.020, 0.016, 0.012, 0.008}
}

// quest1 and quest2 generate (and cache) the synthetic Quest datasets.
var questCache = map[string]dataset.Slice{}

// Quest1 returns the scaled Quest1 dataset.
func (c Config) Quest1() dataset.Slice { return c.questData("quest1") }

// Quest2 returns the scaled Quest2 dataset.
func (c Config) Quest2() dataset.Slice { return c.questData("quest2") }

func (c Config) questData(name string) dataset.Slice {
	key := fmt.Sprintf("%s/%d", name, c.Scale)
	if db, ok := questCache[key]; ok {
		return db
	}
	var cfg quest.Config
	if name == "quest1" {
		cfg = quest.Quest1(c.Scale)
	} else {
		cfg = quest.Quest2(c.Scale)
	}
	db := quest.Generate(cfg)
	questCache[key] = db
	return db
}

// buildTrees constructs both an FP-tree and a CFP-tree for db at the
// given absolute support, returning phase timings. Used by Figure 7.
type buildResult struct {
	Nodes         int           // FP-tree nodes (the paper's x-axis)
	ScanTime      time.Duration // one pass over the data, no tree work
	FPBuildTime   time.Duration
	FPBytes       int64 // at the 40 B/node baseline
	CFPBuildTime  time.Duration
	ConvertTime   time.Duration
	CFPTreeBytes  int64
	CFPArrayBytes int64
}

func buildBoth(db dataset.Slice, minSup uint64, ctl *mine.Control) (buildResult, error) {
	var r buildResult
	if err := ctl.Err(); err != nil {
		return r, err
	}
	counts, err := dataset.CountItems(db)
	if err != nil {
		return r, err
	}
	rec := dataset.NewRecoder(counts, minSup)
	n := rec.NumFrequent()
	names := make([]uint32, n)
	sups := make([]uint64, n)
	for i := 0; i < n; i++ {
		names[i] = rec.Decode(uint32(i))
		sups[i] = rec.Support(uint32(i))
	}
	// Raw scan time (encode only).
	t0 := time.Now()
	var buf []uint32
	_ = db.Scan(func(tx []uint32) error {
		buf = rec.Encode(tx, buf[:0])
		return nil
	})
	r.ScanTime = time.Since(t0)

	t0 = time.Now()
	fp := fptree.New(names, sups)
	_ = db.Scan(func(tx []uint32) error {
		buf = rec.Encode(tx, buf[:0])
		fp.Insert(buf, 1)
		return nil
	})
	r.FPBuildTime = time.Since(t0)
	r.Nodes = fp.NumNodes()
	r.FPBytes = fp.BaselineBytes()

	t0 = time.Now()
	cfp := core.NewTree(arena.New(), core.Config{}, names, sups)
	_ = db.Scan(func(tx []uint32) error {
		buf = rec.Encode(tx, buf[:0])
		cfp.Insert(buf, 1)
		return nil
	})
	r.CFPBuildTime = time.Since(t0)
	r.CFPTreeBytes = cfp.Extent()

	t0 = time.Now()
	arr, err := core.ConvertCtl(cfp, ctl)
	if err != nil {
		return r, err
	}
	r.ConvertTime = time.Since(t0)
	r.CFPArrayBytes = arr.Bytes()
	return r, nil
}

// fprintf writes, ignoring errors (harness output only).
func fprintf(w io.Writer, format string, args ...any) {
	_, _ = fmt.Fprintf(w, format, args...)
}

func seconds(d time.Duration) float64 { return d.Seconds() }

func mib(b int64) float64 { return float64(b) / (1 << 20) }
