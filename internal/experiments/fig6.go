package experiments

import (
	"io"

	"cfpgrowth/internal/arena"
	"cfpgrowth/internal/core"
	"cfpgrowth/internal/dataset"
	"cfpgrowth/internal/synth"
)

// Fig6Row is the average node size of the CFP structures for one
// dataset at one support level (Figures 6(a) and 6(b)).
type Fig6Row struct {
	Dataset      string
	SupportLevel string  // "high", "medium", "low"
	RelSupport   float64 // the actual ξ used
	Nodes        int
	TreeAvgNode  float64 // Fig 6(a): ternary CFP-tree bytes per node
	ArrayAvgNode float64 // Fig 6(b): CFP-array bytes per node
	// ArrayDpos/DeltaItem/Count break the array bytes down per field
	// (the paper notes Δpos dominates on webdocs and Quest).
	ArrayDposShare float64
}

// fig6Supports are the paper's three support levels (§4.2):
// ξ_high = 0.31%, ξ_medium = 0.07%, ξ_low = 0.01%. Scaled-down
// datasets have fewer transactions, so the absolute thresholds floor
// at 2 to stay meaningful.
var fig6Supports = []struct {
	name string
	rel  float64
}{
	{"high", 0.0031},
	{"medium", 0.0007},
	{"low", 0.0001},
}

// Fig6Datasets lists the dataset names used in Figure 6.
func Fig6Datasets() []string {
	return []string{"retail", "connect", "kosarak", "accidents", "webdocs", "quest1", "quest2"}
}

// Fig6 computes both panels of Figure 6.
func (c Config) Fig6() ([]Fig6Row, error) {
	c = c.WithDefaults()
	var rows []Fig6Row
	for _, name := range Fig6Datasets() {
		db, err := c.datasetByName(name)
		if err != nil {
			return nil, err
		}
		counts, err := dataset.CountItems(db)
		if err != nil {
			return nil, err
		}
		levels := fig6Supports
		if c.Quick {
			levels = levels[:1]
		}
		for _, lvl := range levels {
			minSup := dataset.AbsoluteSupport(lvl.rel, counts.NumTx)
			if minSup < 2 {
				minSup = 2
			}
			rec := dataset.NewRecoder(counts, minSup)
			n := rec.NumFrequent()
			names := make([]uint32, n)
			sups := make([]uint64, n)
			for i := 0; i < n; i++ {
				names[i] = rec.Decode(uint32(i))
				sups[i] = rec.Support(uint32(i))
			}
			tree := core.NewTree(arena.New(), core.Config{}, names, sups)
			var buf []uint32
			err = db.Scan(func(tx []uint32) error {
				buf = rec.Encode(tx, buf[:0])
				tree.Insert(buf, 1)
				return nil
			})
			if err != nil {
				return nil, err
			}
			if tree.NumNodes() == 0 {
				continue
			}
			ts := tree.Stats()
			arr := core.Convert(tree)
			as := arr.Stats()
			row := Fig6Row{
				Dataset:      name,
				SupportLevel: lvl.name,
				RelSupport:   lvl.rel,
				Nodes:        ts.Nodes,
				TreeAvgNode:  ts.AvgNodeSize,
				ArrayAvgNode: as.AvgNodeSize,
			}
			if as.DataBytes > 0 {
				row.ArrayDposShare = float64(as.DposBytes) / float64(as.DataBytes)
			}
			rows = append(rows, row)
		}
	}
	return rows, nil
}

// datasetByName resolves Figure 6 dataset names: the FIMI-like
// profiles by synth profile, quest1/quest2 via the Quest generator.
func (c Config) datasetByName(name string) (dataset.Slice, error) {
	switch name {
	case "quest1", "quest2":
		return c.questData(name), nil
	default:
		p, ok := synth.ByName(name)
		if !ok {
			return nil, errUnknownDataset(name)
		}
		// Large profiles get an extra scale factor so Figure 6 stays
		// quick; node-size statistics converge with few thousand
		// transactions.
		scale := c.Scale
		if p.NumTx/scale > 20_000 {
			scale = p.NumTx / 20_000
		}
		return p.Generate(scale), nil
	}
}

type errUnknownDataset string

func (e errUnknownDataset) Error() string { return "unknown dataset " + string(e) }

// PrintFig6 writes both panels.
func PrintFig6(w io.Writer, rows []Fig6Row) {
	fprintf(w, "Figure 6(a): average ternary CFP-tree node size [bytes] (baseline FP-tree: 28–40 B)\n")
	fprintf(w, "%-10s %-8s %10s %12s\n", "dataset", "support", "nodes", "B/node")
	for _, r := range rows {
		fprintf(w, "%-10s %-8s %10d %12.2f\n", r.Dataset, r.SupportLevel, r.Nodes, r.TreeAvgNode)
	}
	fprintf(w, "\nFigure 6(b): average CFP-array node size [bytes]\n")
	fprintf(w, "%-10s %-8s %10s %12s %10s\n", "dataset", "support", "nodes", "B/node", "Δpos share")
	for _, r := range rows {
		fprintf(w, "%-10s %-8s %10d %12.2f %9.0f%%\n",
			r.Dataset, r.SupportLevel, r.Nodes, r.ArrayAvgNode, 100*r.ArrayDposShare)
	}
}
