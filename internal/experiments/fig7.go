package experiments

import (
	"io"
	"time"

	"cfpgrowth/internal/core"
	"cfpgrowth/internal/dataset"
	"cfpgrowth/internal/fptree"
	"cfpgrowth/internal/mine"
	"cfpgrowth/internal/vm"
)

// Fig7Row is one support point of the Figure 7 sweep on Quest1: build
// phase (a, b) and overall execution (c, d) for FP-growth vs
// CFP-growth. Times include the modeled paging penalty; *Measured
// fields carry the raw in-core times.
type Fig7Row struct {
	RelSupport float64
	Nodes      int // initial FP-tree size (the paper's x-axis)

	// Figure 7(a): build time (+ conversion for CFP-growth).
	ScanTime                              time.Duration
	FPBuild                               time.Duration
	CFPBuildConv                          time.Duration
	FPBuildMeasured, CFPBuildConvMeasured time.Duration

	// Figure 7(b): build-phase memory.
	FPBuildBytes  int64
	CFPBuildBytes int64 // tree + array (conversion is not in place)

	// Figure 7(c): total execution time.
	FPTotal, CFPTotal                 time.Duration
	FPTotalMeasured, CFPTotalMeasured time.Duration

	// Figure 7(d): peak memory of the full run (plus average for
	// CFP-growth, which the paper also instruments).
	FPPeakBytes, CFPPeakBytes, CFPAvgBytes int64

	// Itemsets found (identical across algorithms; sanity output).
	Itemsets uint64
}

// Fig7 runs the sweep on Quest1.
func (c Config) Fig7() ([]Fig7Row, error) {
	c = c.WithDefaults()
	db := c.Quest1()
	model := c.Model()
	counts, err := dataset.CountItems(db)
	if err != nil {
		return nil, err
	}
	var rows []Fig7Row
	for _, rel := range c.SupportSweep() {
		minSup := dataset.AbsoluteSupport(rel, counts.NumTx)
		br, err := buildBoth(db, minSup, c.Ctl)
		if err != nil {
			return nil, err
		}
		row := Fig7Row{
			RelSupport:           rel,
			Nodes:                br.Nodes,
			ScanTime:             br.ScanTime,
			FPBuildMeasured:      br.FPBuildTime,
			CFPBuildConvMeasured: br.CFPBuildTime + br.ConvertTime,
			FPBuildBytes:         br.FPBytes,
			CFPBuildBytes:        br.CFPTreeBytes + br.CFPArrayBytes,
		}
		// Build-phase penalties: FP-tree construction is random access
		// over the whole tree; CFP build is random over the (much
		// smaller) tree, conversion sequential over the array.
		row.FPBuild = br.FPBuildTime + model.Penalty(br.FPBytes, br.FPBytes, vm.Random)
		row.CFPBuildConv = br.CFPBuildTime + br.ConvertTime +
			model.Penalty(br.CFPTreeBytes+br.CFPArrayBytes, br.CFPTreeBytes, vm.Random) +
			model.Penalty(br.CFPTreeBytes+br.CFPArrayBytes, br.CFPArrayBytes, vm.Sequential)

		// Total runs.
		var fpTrack, cfpTrack vm.Tracker
		var sink mine.CountSink
		t0 := time.Now()
		if err := (fptree.Growth{Track: &fpTrack}).Mine(db, minSup, &sink); err != nil {
			return nil, err
		}
		row.FPTotalMeasured = time.Since(t0)
		row.FPTotal = row.FPTotalMeasured + model.MinePenalty(&fpTrack)
		row.FPPeakBytes = fpTrack.Peak
		row.Itemsets = sink.N

		sink = mine.CountSink{}
		t0 = time.Now()
		if err := (core.Growth{Track: &cfpTrack}).Mine(db, minSup, &sink); err != nil {
			return nil, err
		}
		row.CFPTotalMeasured = time.Since(t0)
		row.CFPTotal = row.CFPTotalMeasured + model.MinePenalty(&cfpTrack)
		row.CFPPeakBytes = cfpTrack.Peak
		row.CFPAvgBytes = cfpTrack.Avg()
		rows = append(rows, row)
	}
	return rows, nil
}

// PrintFig7 writes all four panels.
func PrintFig7(w io.Writer, rows []Fig7Row, c Config) {
	c = c.WithDefaults()
	fprintf(w, "Figure 7 (Quest1, scale 1/%d, modeled memory budget %.0f MiB)\n\n", c.Scale, mib(c.MemBudget))
	fprintf(w, "(a) build time [s] (+modeled paging; 'measured' = in-core only)\n")
	fprintf(w, "%7s %10s %8s %9s (%9s) %9s (%9s)\n", "ξ%", "nodes", "scan", "FP", "measured", "CFP+conv", "measured")
	for _, r := range rows {
		fprintf(w, "%6.2f%% %10d %8.3f %9.3f (%9.3f) %9.3f (%9.3f)\n",
			100*r.RelSupport, r.Nodes, seconds(r.ScanTime),
			seconds(r.FPBuild), seconds(r.FPBuildMeasured),
			seconds(r.CFPBuildConv), seconds(r.CFPBuildConvMeasured))
	}
	fprintf(w, "\n(b) build-phase memory [MiB]\n")
	fprintf(w, "%7s %10s %12s %12s %8s\n", "ξ%", "nodes", "FP-tree", "CFP(t+a)", "ratio")
	for _, r := range rows {
		ratio := 0.0
		if r.CFPBuildBytes > 0 {
			ratio = float64(r.FPBuildBytes) / float64(r.CFPBuildBytes)
		}
		fprintf(w, "%6.2f%% %10d %12.2f %12.2f %7.1fx\n",
			100*r.RelSupport, r.Nodes, mib(r.FPBuildBytes), mib(r.CFPBuildBytes), ratio)
	}
	fprintf(w, "\n(c) total execution time [s] (+modeled paging)\n")
	fprintf(w, "%7s %10s %10s %9s (%9s) %9s (%9s)\n", "ξ%", "nodes", "itemsets", "FP", "measured", "CFP", "measured")
	for _, r := range rows {
		fprintf(w, "%6.2f%% %10d %10d %9.2f (%9.2f) %9.2f (%9.2f)\n",
			100*r.RelSupport, r.Nodes, r.Itemsets,
			seconds(r.FPTotal), seconds(r.FPTotalMeasured),
			seconds(r.CFPTotal), seconds(r.CFPTotalMeasured))
	}
	fprintf(w, "\n(d) peak memory [MiB] (budget %.0f MiB)\n", mib(c.MemBudget))
	fprintf(w, "%7s %10s %10s %10s %10s\n", "ξ%", "nodes", "FP peak", "CFP peak", "CFP avg")
	for _, r := range rows {
		fprintf(w, "%6.2f%% %10d %10.2f %10.2f %10.2f\n",
			100*r.RelSupport, r.Nodes, mib(r.FPPeakBytes), mib(r.CFPPeakBytes), mib(r.CFPAvgBytes))
	}
}
