package experiments

import (
	"io"

	"cfpgrowth/internal/arena"
	"cfpgrowth/internal/core"
	"cfpgrowth/internal/dataset"
	"cfpgrowth/internal/fptree"
	"cfpgrowth/internal/stats"
	"cfpgrowth/internal/synth"
)

// Table1Result is the leading-zero-byte distribution of the seven
// FP-tree fields on the webdocs-like dataset at ξ = 10% (paper §3.1,
// Table 1).
type Table1Result struct {
	Table stats.Table1
	Nodes int
}

// Table1 runs the experiment.
func (c Config) Table1() (Table1Result, error) {
	c = c.WithDefaults()
	tree, _, err := c.webdocsTrees()
	if err != nil {
		return Table1Result{}, err
	}
	t := stats.AnalyzeFPTree(tree)
	return Table1Result{Table: t, Nodes: t.Nodes}, nil
}

// Print writes the paper-style rows.
func (r Table1Result) Print(w io.Writer) {
	fprintf(w, "Table 1: leading zero bytes per FP-tree field (webdocs-like, ξ=10%%, %d nodes)\n", r.Nodes)
	fprintf(w, "%-10s %7s %7s %7s %7s %7s\n", "field", "0", "1", "2", "3", "4")
	for _, row := range r.Table.Rows() {
		fprintf(w, "%-10s", row.Name)
		for z := 0; z <= 4; z++ {
			fprintf(w, " %6.1f%%", row.Hist.Percent(z))
		}
		fprintf(w, "\n")
	}
	fprintf(w, "zero bytes overall: %.1f%% of memory (paper: ~53%%)\n", 100*r.Table.ZeroByteShare)
}

// Table2Result is the Δitem/pcount distribution of the CFP-tree on the
// same dataset (Table 2).
type Table2Result struct {
	Stats core.TreeStats
}

// Table2 runs the experiment.
func (c Config) Table2() (Table2Result, error) {
	c = c.WithDefaults()
	_, cfp, err := c.webdocsTrees()
	if err != nil {
		return Table2Result{}, err
	}
	return Table2Result{Stats: cfp.Stats()}, nil
}

// Print writes the paper-style rows.
func (r Table2Result) Print(w io.Writer) {
	fprintf(w, "Table 2: leading zero bytes per CFP-tree field (webdocs-like, ξ=10%%, %d nodes)\n", r.Stats.Nodes)
	fprintf(w, "%-10s %7s %7s %7s %7s %7s\n", "field", "0", "1", "2", "3", "4")
	rows := []struct {
		name string
		h    *core.FieldHistogram
	}{
		{"Δitem", &r.Stats.DeltaItem},
		{"pcount", &r.Stats.Pcount},
	}
	for _, row := range rows {
		fprintf(w, "%-10s", row.name)
		for z := 0; z <= 4; z++ {
			fprintf(w, " %6.1f%%", row.h.Percent(z))
		}
		fprintf(w, "\n")
	}
	fprintf(w, "avg node size: %.2f B (std %d, chains %d, embedded %d)\n",
		r.Stats.AvgNodeSize, r.Stats.StdNodes, r.Stats.ChainNodes, r.Stats.EmbeddedLeaves)
}

// webdocsTrees builds the FP-tree and CFP-tree for the webdocs-like
// dataset at ξ = 10%, the configuration of Tables 1 and 2.
func (c Config) webdocsTrees() (*fptree.Tree, *core.Tree, error) {
	p, _ := synth.ByName("webdocs")
	db := p.Generate(c.Scale)
	counts, err := dataset.CountItems(db)
	if err != nil {
		return nil, nil, err
	}
	minSup := dataset.AbsoluteSupport(0.10, counts.NumTx)
	rec := dataset.NewRecoder(counts, minSup)
	n := rec.NumFrequent()
	names := make([]uint32, n)
	sups := make([]uint64, n)
	for i := 0; i < n; i++ {
		names[i] = rec.Decode(uint32(i))
		sups[i] = rec.Support(uint32(i))
	}
	fp := fptree.New(names, sups)
	cfp := core.NewTree(arena.New(), core.Config{}, names, sups)
	var buf []uint32
	err = db.Scan(func(tx []uint32) error {
		buf = rec.Encode(tx, buf[:0])
		fp.Insert(buf, 1)
		cfp.Insert(buf, 1)
		return nil
	})
	if err != nil {
		return nil, nil, err
	}
	return fp, cfp, nil
}

// Table3Row summarizes one synthetic Quest dataset (Table 3).
type Table3Row struct {
	Name          string
	NumTx         int
	AvgItemCard   float64
	DistinctItems int
	SizeBytes     int64 // FIMI text size estimate (≈6 B per occurrence)
}

// Table3 generates and summarizes Quest1 and Quest2.
func (c Config) Table3() ([]Table3Row, error) {
	c = c.WithDefaults()
	var rows []Table3Row
	for _, name := range []string{"quest1", "quest2"} {
		db := c.questData(name)
		n, d, avg, err := dataset.Validate(db)
		if err != nil {
			return nil, err
		}
		var occ int64
		for _, tx := range db {
			occ += int64(len(tx))
		}
		rows = append(rows, Table3Row{
			Name: name, NumTx: n, AvgItemCard: avg, DistinctItems: d,
			SizeBytes: occ * 6,
		})
	}
	return rows, nil
}

// PrintTable3 writes the rows.
func PrintTable3(w io.Writer, rows []Table3Row) {
	fprintf(w, "Table 3: synthetic datasets (scaled)\n")
	fprintf(w, "%-8s %12s %14s %15s %10s\n", "dataset", "# of tx", "avg itemcard", "distinct items", "size")
	for _, r := range rows {
		fprintf(w, "%-8s %12d %14.1f %15d %9.1fM\n",
			r.Name, r.NumTx, r.AvgItemCard, r.DistinctItems, float64(r.SizeBytes)/1e6)
	}
}
