// Package vm models the virtual-memory behavior that dominates the
// paper's Figures 7 and 8: once a miner's working set exceeds physical
// memory, page faults against disk turn an in-core algorithm into an
// out-of-core one, with penalties that differ by orders of magnitude
// between sequential and random access patterns.
//
// The paper ran on a 6 GB machine and let real swapping happen. We
// cannot (and should not) thrash the build machine, so the harness runs
// every algorithm fully in core, records its modeled footprint through
// mine.MemTracker, and charges a modeled paging penalty on top of the
// measured CPU time. The penalty model is deliberately simple and
// documented; the crossover *shapes* it produces are governed by the
// same byte footprints the paper measures (DESIGN.md §2, substitution 3).
package vm

import (
	"time"

	"cfpgrowth/internal/mine"
)

// Pattern classifies how a structure is accessed while it exceeds
// memory.
type Pattern int

const (
	// Sequential: streaming access (CFP-array conversion writes, data
	// scans). One fault per page, amortized at disk bandwidth.
	Sequential Pattern = iota
	// Random: pointer-chasing access (FP-tree build and mining). Pages
	// are revisited many times and each revisit may fault.
	Random
)

// Model is a paging cost model.
type Model struct {
	// PhysicalBytes is the physical memory budget (the paper's 6 GB,
	// scaled down alongside the datasets).
	PhysicalBytes int64
	// PageBytes is the page size (default 4096).
	PageBytes int64
	// SeqPagePenalty is the cost of streaming one page from disk
	// (default 40µs ≈ 100 MB/s, the paper's measured disk bandwidth).
	SeqPagePenalty time.Duration
	// RandPagePenalty is the cost of one random-access fault (default
	// 5ms seek+read).
	RandPagePenalty time.Duration
	// RandomRevisits approximates how many times a resident page is
	// re-touched during pointer-chasing workloads; each re-touch of a
	// non-resident page faults (default 8).
	RandomRevisits float64
}

// Default returns the model used by the experiment harness: a budget of
// physBytes with disk characteristics matching the paper's hardware.
func Default(physBytes int64) Model {
	return Model{
		PhysicalBytes:   physBytes,
		PageBytes:       4096,
		SeqPagePenalty:  40 * time.Microsecond,
		RandPagePenalty: 5 * time.Millisecond,
		RandomRevisits:  8,
	}
}

func (m Model) withDefaults() Model {
	if m.PageBytes == 0 {
		m.PageBytes = 4096
	}
	if m.SeqPagePenalty == 0 {
		m.SeqPagePenalty = 40 * time.Microsecond
	}
	if m.RandPagePenalty == 0 {
		m.RandPagePenalty = 5 * time.Millisecond
	}
	if m.RandomRevisits == 0 {
		m.RandomRevisits = 8
	}
	return m
}

// Penalty returns the modeled paging cost of a phase with the given
// peak working set, total bytes touched, and access pattern.
//
// The model: with peak P over budget B, the non-resident fraction is
// f = 1 - B/P (the OS keeps B bytes resident). Sequential phases fault
// each touched page at most once, paying f × touched/page sequential
// faults. Random phases touch each page RandomRevisits times and pay a
// random fault whenever the page is in the non-resident fraction:
// f × revisits × touched/page faults. Below budget the penalty is 0 —
// the paper's regime 1 ("best performance when all structures fit").
func (m Model) Penalty(peakBytes, touchedBytes int64, p Pattern) time.Duration {
	m = m.withDefaults()
	if m.PhysicalBytes <= 0 || peakBytes <= m.PhysicalBytes {
		return 0
	}
	f := 1 - float64(m.PhysicalBytes)/float64(peakBytes)
	pages := float64(touchedBytes) / float64(m.PageBytes)
	switch p {
	case Sequential:
		return time.Duration(f * pages * float64(m.SeqPagePenalty))
	default:
		return time.Duration(f * m.RandomRevisits * pages * float64(m.RandPagePenalty))
	}
}

// Tracker is a mine.MemTracker that records everything the penalty
// model needs: current and peak footprint plus total bytes allocated
// (the proxy for bytes touched).
type Tracker struct {
	mine.PeakTracker
	TotalAlloc int64
}

// Alloc implements mine.MemTracker.
func (t *Tracker) Alloc(n int64) {
	t.TotalAlloc += n
	t.PeakTracker.Alloc(n)
}

// MinePenalty charges the mining workload recorded by the tracker:
// pointer-chasing (random) over everything it touched at its peak
// working set.
func (m Model) MinePenalty(t *Tracker) time.Duration {
	return m.Penalty(t.Peak, t.TotalAlloc, Random)
}

// Regime classifies a peak footprint against the budget into the
// paper's three regimes (§4.4): 1 = fully in core, 2 = working set
// fits (moderate degradation), 3 = thrashing.
func (m Model) Regime(peakBytes int64) int {
	m = m.withDefaults()
	switch {
	case peakBytes <= m.PhysicalBytes:
		return 1
	case peakBytes <= 2*m.PhysicalBytes:
		return 2
	default:
		return 3
	}
}
