package vm

import (
	"testing"
	"time"
)

func TestPenaltyZeroWithinBudget(t *testing.T) {
	m := Default(1 << 30)
	if p := m.Penalty(1<<30, 1<<32, Random); p != 0 {
		t.Errorf("penalty %v at exactly budget, want 0", p)
	}
	if p := m.Penalty(1<<20, 1<<20, Sequential); p != 0 {
		t.Errorf("penalty %v under budget, want 0", p)
	}
}

func TestPenaltyMonotoneInPeak(t *testing.T) {
	m := Default(1 << 20)
	prev := time.Duration(0)
	for _, peak := range []int64{1 << 20, 3 << 19, 1 << 21, 1 << 22, 1 << 24} {
		p := m.Penalty(peak, 1<<22, Random)
		if p < prev {
			t.Errorf("penalty decreased at peak %d: %v < %v", peak, p, prev)
		}
		prev = p
	}
}

func TestPenaltyRandomExceedsSequential(t *testing.T) {
	m := Default(1 << 20)
	r := m.Penalty(1<<22, 1<<22, Random)
	s := m.Penalty(1<<22, 1<<22, Sequential)
	if r <= s {
		t.Errorf("random %v not above sequential %v", r, s)
	}
	// Orders of magnitude apart, matching disk seek vs stream.
	if r < 100*s {
		t.Errorf("random/sequential ratio %v/%v too small", r, s)
	}
}

func TestPenaltyScalesWithTouched(t *testing.T) {
	m := Default(1 << 20)
	a := m.Penalty(1<<22, 1<<22, Sequential)
	b := m.Penalty(1<<22, 1<<24, Sequential)
	if b <= a {
		t.Errorf("penalty did not grow with touched bytes: %v vs %v", a, b)
	}
}

func TestPenaltyUnlimitedBudget(t *testing.T) {
	m := Model{PhysicalBytes: 0}
	if p := m.Penalty(1<<40, 1<<40, Random); p != 0 {
		t.Errorf("no budget must mean no penalty, got %v", p)
	}
}

func TestRegime(t *testing.T) {
	m := Default(100)
	cases := map[int64]int{50: 1, 100: 1, 150: 2, 200: 2, 201: 3, 1000: 3}
	for peak, want := range cases {
		if got := m.Regime(peak); got != want {
			t.Errorf("Regime(%d) = %d, want %d", peak, got, want)
		}
	}
}

func TestTrackerRecordsTotals(t *testing.T) {
	var tr Tracker
	tr.Alloc(100)
	tr.Alloc(50)
	tr.Free(100)
	tr.Alloc(25)
	if tr.TotalAlloc != 175 {
		t.Errorf("TotalAlloc = %d, want 175", tr.TotalAlloc)
	}
	if tr.Peak != 150 {
		t.Errorf("Peak = %d, want 150", tr.Peak)
	}
	if tr.Cur != 75 {
		t.Errorf("Cur = %d, want 75", tr.Cur)
	}
}

func TestMinePenaltyUsesTracker(t *testing.T) {
	m := Default(1 << 12)
	var tr Tracker
	tr.Alloc(1 << 14)
	if p := m.MinePenalty(&tr); p == 0 {
		t.Error("expected nonzero mine penalty over budget")
	}
	tr2 := Tracker{}
	tr2.Alloc(1 << 10)
	if p := m.MinePenalty(&tr2); p != 0 {
		t.Errorf("unexpected penalty under budget: %v", p)
	}
}
