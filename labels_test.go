package cfpgrowth

import (
	"reflect"
	"testing"
)

func TestLabelEncoderRoundTrip(t *testing.T) {
	var e LabelEncoder
	ids := e.Encode([]string{"bread", "milk", "bread", "eggs"})
	if ids[0] != ids[2] {
		t.Error("repeated label got different ids")
	}
	if ids[0] == ids[1] || ids[1] == ids[3] {
		t.Error("distinct labels share an id")
	}
	if got := e.DecodeSet(ids); !reflect.DeepEqual(got, []string{"bread", "milk", "bread", "eggs"}) {
		t.Errorf("DecodeSet = %v", got)
	}
	if e.NumLabels() != 3 {
		t.Errorf("NumLabels = %d, want 3", e.NumLabels())
	}
}

func TestLabelEncoderLookup(t *testing.T) {
	var e LabelEncoder
	e.Encode([]string{"a"})
	if id, ok := e.Lookup("a"); !ok || id != 0 {
		t.Errorf("Lookup(a) = %d,%v", id, ok)
	}
	if _, ok := e.Lookup("zzz"); ok {
		t.Error("Lookup of unseen label succeeded")
	}
}

func TestLabelEncoderDecodeUnknownPanics(t *testing.T) {
	var e LabelEncoder
	defer func() {
		if recover() == nil {
			t.Error("Decode of unknown item did not panic")
		}
	}()
	e.Decode(42)
}

func TestLabelEncoderMiningWorkflow(t *testing.T) {
	var e LabelEncoder
	db := e.EncodeAll([][]string{
		{"bread", "milk"},
		{"bread", "milk", "eggs"},
		{"milk", "eggs"},
		{"bread", "milk"},
	})
	sets, err := MineAll(db, Options{MinSupport: 3})
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, s := range sets {
		labels := e.DecodeSet(s.Items)
		if len(labels) == 2 && labels[0] == "bread" && labels[1] == "milk" {
			found = true
			if s.Support != 3 {
				t.Errorf("support(bread,milk) = %d, want 3", s.Support)
			}
		}
	}
	if !found {
		t.Error("itemset {bread, milk} not found")
	}
}
