package cfpgrowth

import (
	"sort"
)

// Rule is an association rule X ⇒ Y derived from frequent itemsets:
// transactions containing X also contain Y with the given confidence.
type Rule struct {
	Antecedent []Item // X, sorted ascending
	Consequent []Item // Y, sorted ascending
	Support    uint64 // support of X ∪ Y
	// Confidence is support(X ∪ Y) / support(X).
	Confidence float64
	// Lift is confidence / (support(Y)/|D|); > 1 means positive
	// correlation. Only set when NumTx was provided.
	Lift float64
}

// RuleOptions configures rule generation.
type RuleOptions struct {
	// MinConfidence filters rules below this confidence (0–1].
	MinConfidence float64
	// NumTx, when set, enables lift computation.
	NumTx uint64
	// MaxConsequent bounds |Y| (0 = 1, the classic single-consequent
	// form).
	MaxConsequent int
}

// Rules derives association rules from a set of frequent itemsets (as
// produced by MineAll; the set must be downward closed, which every
// complete mining result is). Rules are returned sorted by descending
// confidence, then descending support.
func Rules(sets []Itemset, opts RuleOptions) []Rule {
	if opts.MinConfidence <= 0 {
		opts.MinConfidence = 0.5
	}
	maxCons := opts.MaxConsequent
	if maxCons <= 0 {
		maxCons = 1
	}
	sup := make(map[string]uint64, len(sets))
	for _, s := range sets {
		sup[setKey(s.Items)] = s.Support
	}
	var rules []Rule
	for _, s := range sets {
		if len(s.Items) < 2 {
			continue
		}
		n := len(s.Items)
		// Enumerate non-empty consequents up to maxCons items.
		for mask := 1; mask < 1<<n; mask++ {
			consSize := popcount(uint(mask))
			if consSize > maxCons || consSize == n {
				continue
			}
			var ante, cons []Item
			for b := 0; b < n; b++ {
				if mask&(1<<b) != 0 {
					cons = append(cons, s.Items[b])
				} else {
					ante = append(ante, s.Items[b])
				}
			}
			anteSup, ok := sup[setKey(ante)]
			if !ok || anteSup == 0 {
				continue
			}
			conf := float64(s.Support) / float64(anteSup)
			if conf < opts.MinConfidence {
				continue
			}
			r := Rule{
				Antecedent: ante,
				Consequent: cons,
				Support:    s.Support,
				Confidence: conf,
			}
			if opts.NumTx > 0 {
				if consSup, ok := sup[setKey(cons)]; ok && consSup > 0 {
					r.Lift = conf / (float64(consSup) / float64(opts.NumTx))
				}
			}
			rules = append(rules, r)
		}
	}
	sort.Slice(rules, func(i, j int) bool {
		a, b := &rules[i], &rules[j]
		if a.Confidence != b.Confidence {
			return a.Confidence > b.Confidence
		}
		if a.Support != b.Support {
			return a.Support > b.Support
		}
		if c := compareSets(a.Antecedent, b.Antecedent); c != 0 {
			return c < 0
		}
		return compareSets(a.Consequent, b.Consequent) < 0
	})
	return rules
}

// compareSets orders itemsets by length, then lexicographically.
func compareSets(a, b []Item) int {
	if len(a) != len(b) {
		if len(a) < len(b) {
			return -1
		}
		return 1
	}
	for i := range a {
		if a[i] != b[i] {
			if a[i] < b[i] {
				return -1
			}
			return 1
		}
	}
	return 0
}

func setKey(items []Item) string {
	b := make([]byte, 4*len(items))
	for i, v := range items {
		b[4*i] = byte(v)
		b[4*i+1] = byte(v >> 8)
		b[4*i+2] = byte(v >> 16)
		b[4*i+3] = byte(v >> 24)
	}
	return string(b)
}

func popcount(v uint) int {
	n := 0
	for ; v != 0; v &= v - 1 {
		n++
	}
	return n
}
