package cfpgrowth

import (
	"fmt"
	"sort"

	"cfpgrowth/internal/arena"
	"cfpgrowth/internal/core"
	"cfpgrowth/internal/mine"
)

// UpdatableIndex supports incremental mining: transactions are added
// over time and the index can be mined at any moment, at any support.
// This is the CanTree idea (Leung et al.) applied to the CFP-tree:
// items are kept in a *fixed, frequency-independent* order (arrival
// order of first occurrence), so insertions never require
// restructuring, at the cost of a prefix tree that compresses less
// than the frequency-ordered one (deep, rarely shared prefixes no
// longer bubble to the top). Mining converts the current tree to a
// CFP-array on demand; conversions are cached until the next Add.
//
// Not safe for concurrent use.
type UpdatableIndex struct {
	cfg     core.Config
	arena   *arena.Arena
	tree    *core.Tree
	ids     map[Item]uint32 // item -> fixed dense rank
	names   []uint32        // rank -> item
	counts  []uint64        // rank -> support so far
	numTx   uint64
	rankBuf []uint32
	arr     *core.Array // cached conversion; nil when stale
}

// NewUpdatableIndex returns an empty updatable index.
func NewUpdatableIndex(tree TreeConfig) *UpdatableIndex {
	cfg := core.Config{
		MaxChainLen:   tree.MaxChainLen,
		DisableChains: tree.DisableChains,
		DisableEmbed:  tree.DisableEmbed,
	}
	u := &UpdatableIndex{
		cfg:   cfg,
		arena: arena.New(),
		ids:   make(map[Item]uint32),
	}
	u.tree = core.NewTree(u.arena, cfg, u.names, u.counts)
	return u
}

// Add ingests one transaction (a set; duplicates ignored).
func (u *UpdatableIndex) Add(tx []Item) {
	u.arr = nil
	u.numTx++
	u.rankBuf = u.rankBuf[:0]
	for _, it := range tx {
		rk, ok := u.ids[it]
		if !ok {
			rk = uint32(len(u.names))
			u.ids[it] = rk
			u.names = append(u.names, it)
			u.counts = append(u.counts, 0)
			// The tree shares the backing slices; re-point them after
			// growth.
			u.refreshTreeSlices()
		}
		u.rankBuf = append(u.rankBuf, rk)
	}
	sort.Slice(u.rankBuf, func(i, j int) bool { return u.rankBuf[i] < u.rankBuf[j] })
	w := 0
	for i, rk := range u.rankBuf {
		if i == 0 || rk != u.rankBuf[w-1] {
			u.rankBuf[w] = rk
			w++
		}
	}
	u.rankBuf = u.rankBuf[:w]
	for _, rk := range u.rankBuf {
		u.counts[rk]++
	}
	u.tree.Insert(u.rankBuf, 1)
}

// refreshTreeSlices re-links the tree's item metadata after the
// universe grows (append may reallocate the backing arrays).
func (u *UpdatableIndex) refreshTreeSlices() {
	u.tree.SetItemSpace(u.names, u.counts)
}

// NumTx returns the number of transactions added.
func (u *UpdatableIndex) NumTx() uint64 { return u.numTx }

// NumItems returns the number of distinct items seen.
func (u *UpdatableIndex) NumItems() int { return len(u.names) }

// TreeBytes returns the live compressed-tree footprint.
func (u *UpdatableIndex) TreeBytes() int64 { return u.tree.Bytes() }

// Mine emits every itemset whose support reaches minSupport. The
// support may differ between calls — lower thresholds need no rebuild.
func (u *UpdatableIndex) Mine(minSupport uint64, fn Handler) error {
	if minSupport == 0 {
		minSupport = 1
	}
	if u.numTx == 0 {
		return nil
	}
	if u.arr == nil {
		u.arr = core.Convert(u.tree)
	}
	return core.MineArray(u.arr, u.cfg, minSupport, handlerSink{fn: fn}, nil, 0, nil)
}

// MineAll materializes the result at minSupport.
func (u *UpdatableIndex) MineAll(minSupport uint64) ([]Itemset, error) {
	var sink mine.CollectSink
	if err := u.Mine(minSupport, func(items []Item, sup uint64) error {
		cp := make([]Item, len(items))
		copy(cp, items)
		sink.Sets = append(sink.Sets, Itemset{Items: cp, Support: sup})
		return nil
	}); err != nil {
		return nil, err
	}
	mine.Canonicalize(sink.Sets)
	return sink.Sets, nil
}

// Support returns the current exact support of a single item.
func (u *UpdatableIndex) Support(it Item) uint64 {
	if rk, ok := u.ids[it]; ok {
		return u.counts[rk]
	}
	return 0
}

// String summarizes the index state.
func (u *UpdatableIndex) String() string {
	return fmt.Sprintf("UpdatableIndex{tx: %d, items: %d, tree: %d B}",
		u.numTx, len(u.names), u.TreeBytes())
}
