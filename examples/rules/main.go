// Rules: full association-rule workflow. The input is an IBM-Quest-
// style dataset, whose generation process plants genuinely correlated
// "potentially frequent" patterns (the same generator behind the
// paper's Quest1/Quest2 workloads) — so mining recovers real structure,
// not noise. The example compares algorithm runtimes on the same input
// and then derives high-confidence rules.
package main

import (
	"fmt"
	"log"
	"time"

	"cfpgrowth"
	"cfpgrowth/internal/quest"
)

func main() {
	db := cfpgrowth.Transactions(quest.Generate(quest.Config{
		NumTx:         5000,
		AvgTxLen:      12,
		NumItems:      400,
		NumPatterns:   60,
		AvgPatternLen: 4,
		Seed:          9,
	}))
	fmt.Printf("transactions: %d\n", len(db))

	// Compare a few algorithms end to end on identical input; all
	// produce the same itemsets.
	opts := cfpgrowth.Options{RelativeSupport: 0.02}
	for _, alg := range []string{"cfpgrowth", "fpgrowth", "eclat", "apriori"} {
		o := opts
		o.Algorithm = alg
		start := time.Now()
		total, _, err := cfpgrowth.Count(db, o)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-10s %6d itemsets in %8.2fms\n",
			alg, total, float64(time.Since(start).Microseconds())/1000)
	}

	sets, err := cfpgrowth.MineAll(db, opts)
	if err != nil {
		log.Fatal(err)
	}
	rules := cfpgrowth.Rules(sets, cfpgrowth.RuleOptions{
		MinConfidence: 0.80,
		NumTx:         uint64(len(db)),
		MaxConsequent: 1,
	})
	fmt.Printf("\nrules with confidence ≥ 80%%: %d; strongest:\n", len(rules))
	for i, r := range rules {
		if i == 8 {
			break
		}
		fmt.Printf("  %v => %v  (conf %.1f%%, lift %.2f, support %d)\n",
			r.Antecedent, r.Consequent, 100*r.Confidence, r.Lift, r.Support)
	}
	if len(rules) == 0 {
		fmt.Println("  (none — lower the confidence threshold)")
	}
}
