// Streaming: incremental mining over a live event stream. Orders
// arrive one at a time with string product labels; an UpdatableIndex
// (CanTree-style fixed item order over the CFP structures) absorbs
// each order as it happens and can be mined at any moment — here after
// every "day" — without rebuilding or re-scanning history.
package main

import (
	"fmt"
	"math/rand"

	"cfpgrowth"
)

// catalog is the shop's product list; co-purchase structure is planted
// via the bundles below.
var catalog = []string{
	"espresso-beans", "grinder", "milk-frother", "filter-papers",
	"teapot", "green-tea", "honey", "mug", "descaler", "scale",
}

var bundles = [][]string{
	{"espresso-beans", "grinder", "scale"},
	{"teapot", "green-tea", "honey"},
	{"espresso-beans", "milk-frother", "mug"},
}

func main() {
	var enc cfpgrowth.LabelEncoder
	idx := cfpgrowth.NewUpdatableIndex(cfpgrowth.TreeConfig{})
	rng := rand.New(rand.NewSource(42))

	for day := 1; day <= 3; day++ {
		// A few hundred orders arrive during the day.
		for o := 0; o < 300; o++ {
			var order []string
			b := bundles[rng.Intn(len(bundles))]
			for _, p := range b {
				if rng.Float64() < 0.8 {
					order = append(order, p)
				}
			}
			// Some random extras.
			for rng.Float64() < 0.3 {
				order = append(order, catalog[rng.Intn(len(catalog))])
			}
			if len(order) == 0 {
				continue
			}
			idx.Add(enc.Encode(order))
		}

		// End of day: mine the running index (no rebuild, no rescan).
		minSup := idx.NumTx() / 10 // product sets in ≥10% of all orders so far
		sets, err := idx.MineAll(minSup)
		if err != nil {
			panic(err)
		}
		fmt.Printf("day %d: %d orders so far, tree %d B, %d product sets in ≥10%% of orders\n",
			day, idx.NumTx(), idx.TreeBytes(), len(sets))
		shown := 0
		for _, s := range sets {
			if len(s.Items) < 2 {
				continue
			}
			fmt.Printf("   %v  (%d orders)\n", enc.DecodeSet(s.Items), s.Support)
			shown++
			if shown == 3 {
				break
			}
		}
	}
}
