// Marketbasket: the paper's motivating use case ("customers who bought
// this item also bought ..."). Generates a retail-like dataset with a
// power-law item popularity, mines it with CFP-growth, derives
// association rules, and prints recommendations for the most popular
// products.
package main

import (
	"fmt"
	"log"
	"sort"

	"cfpgrowth"
	"cfpgrowth/internal/synth"
)

func main() {
	// A scaled-down retail-shaped dataset (~8.8k baskets, power-law
	// item popularity, avg ~10 items per basket).
	profile, _ := synth.ByName("retail")
	db := cfpgrowth.Transactions(profile.Generate(10))
	fmt.Printf("baskets: %d\n", len(db))

	opts := cfpgrowth.Options{RelativeSupport: 0.01} // items in ≥1% of baskets
	var ms cfpgrowth.MemoryStats
	opts.Memory = &ms
	sets, err := cfpgrowth.MineAll(db, opts)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("frequent itemsets at ξ=1%%: %d (peak modeled memory %d KiB)\n",
		len(sets), ms.PeakBytes/1024)

	rules := cfpgrowth.Rules(sets, cfpgrowth.RuleOptions{
		MinConfidence: 0.3,
		NumTx:         uint64(len(db)),
	})
	fmt.Printf("association rules at confidence ≥ 0.3: %d\n\n", len(rules))

	// Top recommendations: for each of the 5 highest-support rules
	// with positive lift, print the "also bought" suggestion.
	sort.SliceStable(rules, func(i, j int) bool { return rules[i].Support > rules[j].Support })
	fmt.Println("top recommendations (X => also buy Y):")
	shown := 0
	for _, r := range rules {
		if r.Lift <= 1 {
			continue
		}
		fmt.Printf("  customers buying %v also buy %v  (conf %.0f%%, lift %.1f, %d baskets)\n",
			r.Antecedent, r.Consequent, 100*r.Confidence, r.Lift, r.Support)
		shown++
		if shown == 5 {
			break
		}
	}
	if shown == 0 {
		fmt.Println("  (no positively correlated rules at this threshold)")
	}
}
