// Weblog: web-usage mining on long sessions — the webdocs-style stress
// case that motivates the CFP structures (§3.1). Each "transaction" is
// the set of pages a visitor touched; sessions are long, so the prefix
// tree is deep and chain nodes shine. The example mines page sets that
// co-occur in at least 10% of sessions and reports how much smaller the
// compressed structures are than the FP-tree the paper starts from.
package main

import (
	"fmt"
	"log"

	"cfpgrowth"
	"cfpgrowth/internal/synth"
)

func main() {
	// Webdocs-shaped data, scaled to ~1.7k very long sessions.
	profile, _ := synth.ByName("webdocs")
	db := cfpgrowth.Transactions(profile.Generate(1000))
	var totalLen int
	for _, s := range db {
		totalLen += len(s)
	}
	fmt.Printf("sessions: %d, avg pages per session: %.1f\n",
		len(db), float64(totalLen)/float64(len(db)))

	// The paper's Webdocs configuration: minimum support 10%.
	opts := cfpgrowth.Options{RelativeSupport: 0.10, MaxLen: 4}
	cs, err := cfpgrowth.AnalyzeCompression(db, opts)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nprefix tree: %d nodes\n", cs.FPTreeNodes)
	fmt.Printf("  standard FP-tree:  %8d B (%d B/node)\n", cs.FPTreeBytes, 28)
	fmt.Printf("  ternary CFP-tree:  %8d B (%.2f B/node, %.1fx smaller)\n",
		cs.CFPTreeBytes, cs.CFPTreeAvgNode, float64(cs.FPTreeBytes)/float64(cs.CFPTreeBytes))
	fmt.Printf("  CFP-array:         %8d B (%.2f B/node)\n", cs.CFPArrayBytes, cs.CFPArrayAvgNode)
	fmt.Printf("  node kinds: %d standard, %d chains, %d embedded leaves\n",
		cs.StdNodes, cs.ChainNodes, cs.EmbeddedLeaves)

	total, byLen, err := cfpgrowth.Count(db, opts)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\npage sets in ≥10%% of sessions (up to 4 pages): %d\n", total)
	for l := 1; l < len(byLen); l++ {
		if byLen[l] > 0 {
			fmt.Printf("  %d-page sets: %d\n", l, byLen[l])
		}
	}

	// Show a handful of the strongest pairs.
	fmt.Println("\nsample co-visited page pairs:")
	shown := 0
	err = cfpgrowth.Mine(db, opts, func(items []cfpgrowth.Item, sup uint64) error {
		if len(items) == 2 && shown < 5 {
			fmt.Printf("  pages %v: %d sessions (%.0f%%)\n",
				items, sup, 100*float64(sup)/float64(len(db)))
			shown++
		}
		return nil
	})
	if err != nil {
		log.Fatal(err)
	}
}
