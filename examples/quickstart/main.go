// Quickstart: mine frequent itemsets from a small in-memory database
// with the default CFP-growth algorithm, then compare the memory
// footprint of the compressed structures against the FP-tree baseline.
package main

import (
	"fmt"
	"log"

	"cfpgrowth"
)

func main() {
	// A toy market-basket database: items are product identifiers.
	db := cfpgrowth.Transactions{
		{1, 2, 3},
		{1, 2},
		{1, 3},
		{2, 3},
		{1, 2, 3, 4},
		{4},
	}

	fmt.Println("frequent itemsets (minimum support 2):")
	err := cfpgrowth.Mine(db, cfpgrowth.Options{MinSupport: 2},
		func(items []cfpgrowth.Item, support uint64) error {
			fmt.Printf("  %v  support=%d\n", items, support)
			return nil
		})
	if err != nil {
		log.Fatal(err)
	}

	// The same run with any other registered algorithm produces the
	// same answer.
	total, byLen, err := cfpgrowth.Count(db, cfpgrowth.Options{MinSupport: 2, Algorithm: "fpgrowth"})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nfpgrowth agrees: %d itemsets, by size %v\n", total, byLen[1:])

	// How well do the paper's structures compress this database?
	cs, err := cfpgrowth.AnalyzeCompression(db, cfpgrowth.Options{MinSupport: 1})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ncompression: %d tree nodes\n", cs.FPTreeNodes)
	fmt.Printf("  FP-tree      %4d B (28 B/node; 40 B/node in common implementations)\n", cs.FPTreeBytes)
	fmt.Printf("  CFP-tree     %4d B (%.2f B/node: %d standard, %d chain, %d embedded)\n",
		cs.CFPTreeBytes, cs.CFPTreeAvgNode, cs.StdNodes, cs.ChainNodes, cs.EmbeddedLeaves)
	fmt.Printf("  CFP-array    %4d B (%.2f B/node)\n", cs.CFPArrayBytes, cs.CFPArrayAvgNode)
}
