package cfpgrowth

import (
	"path/filepath"
	"reflect"
	"testing"

	"cfpgrowth/internal/dataset"
)

var exampleDB = Transactions{
	{1, 2, 3},
	{1, 2},
	{1, 3},
	{2, 3},
	{1, 2, 3, 4},
	{4},
}

func TestMineBasic(t *testing.T) {
	var got []Itemset
	err := Mine(exampleDB, Options{MinSupport: 2}, func(items []Item, sup uint64) error {
		cp := make([]Item, len(items))
		copy(cp, items)
		got = append(got, Itemset{Items: cp, Support: sup})
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 8 {
		t.Errorf("found %d itemsets, want 8", len(got))
	}
}

func TestMineAllEveryAlgorithm(t *testing.T) {
	want, err := MineAll(exampleDB, Options{MinSupport: 2})
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range Algorithms() {
		got, err := MineAll(exampleDB, Options{MinSupport: 2, Algorithm: name})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("%s disagrees with default algorithm", name)
		}
	}
}

func TestRelativeSupport(t *testing.T) {
	// 6 transactions, 0.33 → absolute 2.
	a, err := MineAll(exampleDB, Options{RelativeSupport: 0.33})
	if err != nil {
		t.Fatal(err)
	}
	b, err := MineAll(exampleDB, Options{MinSupport: 2})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Error("relative support 0.33 over 6 txs must equal absolute 2")
	}
}

func TestOptionValidation(t *testing.T) {
	if err := Mine(exampleDB, Options{}, nil); err == nil {
		t.Error("accepted missing support")
	}
	if err := Mine(exampleDB, Options{MinSupport: 1, RelativeSupport: 0.5}, nil); err == nil {
		t.Error("accepted both support forms")
	}
	if err := Mine(exampleDB, Options{RelativeSupport: 1.5}, nil); err == nil {
		t.Error("accepted relative support > 1")
	}
	if err := Mine(exampleDB, Options{MinSupport: 1, Algorithm: "bogus"}, func([]Item, uint64) error { return nil }); err == nil {
		t.Error("accepted unknown algorithm")
	}
}

func TestCount(t *testing.T) {
	total, byLen, err := Count(exampleDB, Options{MinSupport: 2})
	if err != nil {
		t.Fatal(err)
	}
	if total != 8 {
		t.Errorf("total = %d, want 8", total)
	}
	if byLen[1] != 4 || byLen[2] != 3 || byLen[3] != 1 {
		t.Errorf("byLen = %v", byLen)
	}
}

func TestMaxLen(t *testing.T) {
	var maxSeen int
	err := Mine(exampleDB, Options{MinSupport: 2, MaxLen: 2}, func(items []Item, sup uint64) error {
		if len(items) > maxSeen {
			maxSeen = len(items)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if maxSeen > 2 {
		t.Errorf("itemset of length %d leaked past MaxLen 2", maxSeen)
	}
}

func TestMemoryStats(t *testing.T) {
	var ms MemoryStats
	if err := Mine(exampleDB, Options{MinSupport: 2, Memory: &ms}, func([]Item, uint64) error { return nil }); err != nil {
		t.Fatal(err)
	}
	if ms.PeakBytes <= 0 {
		t.Error("no peak memory reported")
	}
}

func TestFileSource(t *testing.T) {
	path := filepath.Join(t.TempDir(), "db.fimi")
	if err := dataset.WriteFile(path, dataset.Slice(exampleDB)); err != nil {
		t.Fatal(err)
	}
	got, err := MineAll(File(path), Options{MinSupport: 2})
	if err != nil {
		t.Fatal(err)
	}
	want, err := MineAll(exampleDB, Options{MinSupport: 2})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Error("file-backed mining differs from in-memory mining")
	}
}

func TestAnalyzeCompression(t *testing.T) {
	cs, err := AnalyzeCompression(exampleDB, Options{MinSupport: 1})
	if err != nil {
		t.Fatal(err)
	}
	if cs.FPTreeNodes <= 0 {
		t.Fatal("no nodes analyzed")
	}
	if cs.CFPTreeBytes >= cs.FPTreeBytes {
		t.Errorf("CFP-tree %d B not smaller than FP-tree %d B", cs.CFPTreeBytes, cs.FPTreeBytes)
	}
	if cs.CFPArrayBytes >= cs.BaselineBytes {
		t.Errorf("CFP-array %d B not smaller than 40 B/node baseline %d B", cs.CFPArrayBytes, cs.BaselineBytes)
	}
	if cs.StdNodes+cs.ChainNodes+cs.EmbeddedLeaves == 0 {
		t.Error("no physical node breakdown")
	}
}

func TestTreeConfigPlumbing(t *testing.T) {
	a, err := AnalyzeCompression(exampleDB, Options{MinSupport: 1})
	if err != nil {
		t.Fatal(err)
	}
	b, err := AnalyzeCompression(exampleDB, Options{MinSupport: 1,
		Tree: TreeConfig{DisableChains: true, DisableEmbed: true}})
	if err != nil {
		t.Fatal(err)
	}
	if b.ChainNodes != 0 || b.EmbeddedLeaves != 0 {
		t.Error("TreeConfig not plumbed through")
	}
	if b.CFPTreeBytes <= a.CFPTreeBytes {
		t.Error("disabling chains+embedding should increase tree bytes")
	}
}
